// Package resilience turns the protected cache into an online,
// self-healing system: the paper's premise is that correction is a
// rare, slow background process decoupled from fast detection (§4,
// Fig. 4(b)), so this package supplies the runtime half — a recovery
// escalation ladder that replaces one-shot recovery, a traffic-aware
// background scrubber, and a health report — so the cache keeps
// serving traffic while faults arrive continuously.
//
// The escalation ladder runs on every detected-uncorrectable (DUE)
// access, cheapest rung first:
//
//  1. retry — re-issue the access; a concurrent scrubber or another
//     client's repair may already have cleared the damage.
//  2. word recovery — targeted horizontal correction of exactly the
//     failed word(s), no array-wide march.
//  3. full 2D recovery — the Fig. 4(b) process over the whole bank.
//  4. graceful degradation — the affected way is decommissioned (its
//     line refetched from backing on the next access; unflushed dirty
//     data is counted as lost), and, if a spare-row budget remains,
//     remapped to a spare via the redundancy allocator and returned to
//     service.
//
// Rung 4 terminates: each pass retires one more way, and a fully
// retired set bypasses the arrays entirely, so the ladder ends in a
// usable, smaller cache rather than an error loop.
//
// All instrumentation is served through an obs.Registry: every ladder
// counter is an obs.Counter, ladder latency lands in a histogram, and
// Report() is built from one coherent Snapshot, so concurrent readers
// can never observe impossible states (retry hits exceeding retries,
// repairs exceeding DUEs).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"twodcache/internal/fault"
	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/redundancy"
)

// Config tunes the escalation ladder.
type Config struct {
	// MaxRetries is how many times rung 1 re-issues the access before
	// escalating. Zero selects 1; negative disables the rung.
	MaxRetries int
	// SpareRows is the spare-row budget for remapping decommissioned
	// ways back into service (rung 4). Zero disables remapping.
	SpareRows int
	// Clock overrides the time source (tests). Nil selects time.Now.
	Clock func() time.Time
	// Metrics is the registry the engine (and its cache and scrubber)
	// registers into. Nil selects a fresh private registry. Reusing one
	// registry across two engines over the same cache panics on the
	// duplicate metric names — one registry serves one engine.
	Metrics *obs.Registry
	// Sink receives structured recovery events (RecoveryStart/End,
	// DegradeEpoch, ScrubPass, UncorrectableDetected); it is also
	// installed on the cache. Nil selects the no-op sink.
	Sink obs.Sink
	// Breaker tunes the per-bank circuit breakers in front of the
	// recovery rungs (see BreakerConfig). The zero value enables them
	// with defaults; set Disabled to opt out.
	Breaker BreakerConfig
	// RecoveryStall, when non-nil, is a chaos stall point hit (under
	// the repair context) at the entry of the full-2D rung — the rung
	// that models the paper's whole-bank recovery sweep. Tests and
	// cmd/soak arm it to prove the watchdog unsticks wedged repairs.
	RecoveryStall *fault.Stall
}

// Engine metric names (see DESIGN.md §8 for the full catalogue).
const (
	metricDUEs          = "resilience_dues_total"
	metricRetries       = "resilience_retries_total"
	metricRetryHits     = "resilience_retry_hits_total"
	metricWordAttempts  = "resilience_word_attempts_total"
	metricWordHits      = "resilience_word_hits_total"
	metricFullAttempts  = "resilience_full_attempts_total"
	metricFullHits      = "resilience_full_hits_total"
	metricDecommissions = "resilience_decommissions_total"
	metricRemaps        = "resilience_remaps_total"
	metricExhausted     = "resilience_exhausted_total"
	metricLadderSeconds = "resilience_ladder_seconds"

	metricCoalesced          = "resilience_coalesced_waits_total"
	metricSheds              = "resilience_sheds_total"
	metricBreakerTrips       = "resilience_breaker_trips_total"
	metricBreakerTransitions = "resilience_breaker_transitions_total"
	metricWatchdogFires      = "resilience_watchdog_fires_total"
	metricDeadlineAborts     = "resilience_deadline_aborts_total"
	metricBreakersOpen       = "resilience_breakers_open"

	metricScrubPasses   = "scrub_passes_total"
	metricScrubBackoffs = "scrub_backoffs_total"
	metricScrubVictims  = "scrub_victims_total"
	metricScrubSeconds  = "scrub_pass_seconds"
)

// Engine wraps a protected cache with the recovery escalation ladder.
// All methods are safe for concurrent use.
type Engine struct {
	cache   *pcache.Cache
	cfg     Config
	clock   func() time.Time
	metrics *obs.Registry

	// sink holds the structured event sink behind an atomic pointer so
	// SetEventSink can swap it while ladders, sweeps, and breakers are
	// emitting. Always non-nil (NopSink by default); read via snk().
	sink atomic.Pointer[obs.Sink]

	// remap state: the accumulated faulty way-rows presented to the
	// redundancy allocator, and which ways already consumed their one
	// remap (a second failure means the spare itself is bad).
	mu           sync.Mutex
	faultyRows   []redundancy.Fault
	remappedOnce map[int]bool
	scrubber     *Scrubber

	// Bounded-latency state: one in-flight repair slot per bank
	// (single-flight), one circuit breaker per bank, and the optional
	// chaos stall point hit at the full-2D rung.
	flightMu sync.Mutex
	flights  map[int]*flight
	breakers []*HealthBreaker
	stall    *fault.Stall

	// testHookLeadStart, when set, runs as the repair leader enters the
	// rungs — test-only, to hold a leader in place deterministically.
	testHookLeadStart func(fl *flight)

	dues          *obs.Counter
	retries       *obs.Counter
	retryHits     *obs.Counter
	wordAttempts  *obs.Counter
	wordHits      *obs.Counter
	fullAttempts  *obs.Counter
	fullHits      *obs.Counter
	decommissions *obs.Counter
	remaps        *obs.Counter
	exhausted     *obs.Counter
	ladderLatency *obs.Histogram

	coalesced          *obs.Counter
	sheds              *obs.Counter
	breakerTrips       *obs.Counter
	breakerTransitions *obs.Counter
	watchdogFires      *obs.Counter
	deadlineAborts     *obs.Counter
	breakersOpen       *obs.Gauge

	// Scrub counters live on the engine (pre-registered, zero without a
	// scrubber) so attaching a scrubber never re-registers names.
	scrubPasses   *obs.Counter
	scrubBackoffs *obs.Counter
	scrubVictims  *obs.Counter
	scrubLatency  *obs.Histogram
}

// New builds an engine over the cache, registering the engine's, the
// scrubber's, and the cache's instrumentation into cfg.Metrics (or a
// fresh registry) and installing cfg.Sink on the cache.
func New(c *pcache.Cache, cfg Config) *Engine {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 1
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sink := cfg.Sink
	if sink == nil {
		sink = obs.NopSink{}
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	e := &Engine{
		cache:        c,
		cfg:          cfg,
		clock:        clock,
		metrics:      reg,
		remappedOnce: map[int]bool{},
		flights:      map[int]*flight{},
		stall:        cfg.RecoveryStall,

		dues:          new(obs.Counter),
		retries:       new(obs.Counter),
		retryHits:     new(obs.Counter),
		wordAttempts:  new(obs.Counter),
		wordHits:      new(obs.Counter),
		fullAttempts:  new(obs.Counter),
		fullHits:      new(obs.Counter),
		decommissions: new(obs.Counter),
		remaps:        new(obs.Counter),
		exhausted:     new(obs.Counter),
		ladderLatency: obs.MustHistogram(),

		coalesced:          new(obs.Counter),
		sheds:              new(obs.Counter),
		breakerTrips:       new(obs.Counter),
		breakerTransitions: new(obs.Counter),
		watchdogFires:      new(obs.Counter),
		deadlineAborts:     new(obs.Counter),
		breakersOpen:       new(obs.Gauge),

		scrubPasses:   new(obs.Counter),
		scrubBackoffs: new(obs.Counter),
		scrubVictims:  new(obs.Counter),
		scrubLatency:  obs.MustHistogram(),
	}
	e.breakers = e.newBankBreakers(c.NumBanks())
	e.RegisterMetrics(reg)
	e.SetEventSink(sink)
	return e
}

// RegisterMetrics wires the engine's instrumentation — and, through it,
// the scrubber's and the cache's — into r. New registers into
// cfg.Metrics automatically; call this only to mirror the engine into
// an additional registry (a sharded store labels every shard's engine
// into one shared registry through prefixed views). Registering the
// same engine twice into one registry panics on the duplicate names.
// Dependent counters register — and are therefore snapshotted — before
// their upper bounds, and ClampLE invariants back them up.
func (e *Engine) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc(metricDUEs, "detected-uncorrectable events entering the ladder", e.dues.Load)
	r.CounterFunc(metricRetries, "rung-1 access re-issues", e.retries.Load)
	r.CounterFunc(metricRetryHits, "accesses rescued by a bare retry", e.retryHits.Load)
	r.CounterFunc(metricWordAttempts, "rung-2 targeted word recoveries attempted", e.wordAttempts.Load)
	r.CounterFunc(metricWordHits, "accesses rescued by word recovery", e.wordHits.Load)
	r.CounterFunc(metricFullAttempts, "rung-3 full 2D recoveries attempted", e.fullAttempts.Load)
	r.CounterFunc(metricFullHits, "accesses rescued by full 2D recovery", e.fullHits.Load)
	r.CounterFunc(metricDecommissions, "ways retired by graceful degradation", e.decommissions.Load)
	r.CounterFunc(metricRemaps, "retired ways remapped to spare rows", e.remaps.Load)
	r.CounterFunc(metricExhausted, "ladder runs that failed even after degradation", e.exhausted.Load)
	r.AttachHistogram(metricLadderSeconds, "DUE-to-resolution ladder latency", e.ladderLatency)

	r.CounterFunc(metricCoalesced, "requests coalesced onto an in-flight bank repair", e.coalesced.Load)
	r.CounterFunc(metricSheds, "repairs routed straight to degrade by an open breaker", e.sheds.Load)
	r.CounterFunc(metricBreakerTrips, "breaker transitions into the open state", e.breakerTrips.Load)
	r.CounterFunc(metricBreakerTransitions, "all breaker state transitions", e.breakerTransitions.Load)
	r.CounterFunc(metricWatchdogFires, "stuck repairs force-escalated by the watchdog", e.watchdogFires.Load)
	r.CounterFunc(metricDeadlineAborts, "ladder runs abandoned at the caller's deadline", e.deadlineAborts.Load)
	r.GaugeFunc(metricBreakersOpen, "banks currently behind an open breaker", e.breakersOpen.Load)

	r.CounterFunc(metricScrubPasses, "completed scrub sweeps", e.scrubPasses.Load)
	r.CounterFunc(metricScrubBackoffs, "sweeps deferred under high traffic", e.scrubBackoffs.Load)
	r.CounterFunc(metricScrubVictims, "unrepairable ways retired by sweeps", e.scrubVictims.Load)
	r.AttachHistogram(metricScrubSeconds, "whole-sweep scrub latency", e.scrubLatency)

	// The success count of a rung can never exceed its attempts, remaps
	// never exceed decommissions, and no rung outcome exceeds the DUEs
	// that entered the ladder: declare it so snapshots enforce it.
	r.ClampLE(metricRetryHits, metricRetries)
	r.ClampLE(metricWordHits, metricWordAttempts)
	r.ClampLE(metricFullHits, metricFullAttempts)
	r.ClampLE(metricRemaps, metricDecommissions)
	r.ClampLE(metricExhausted, metricDUEs)
	// At most one shed and one deadline abort per ladder run, and every
	// breaker trip is itself a transition.
	r.ClampLE(metricSheds, metricDUEs)
	r.ClampLE(metricDeadlineAborts, metricDUEs)
	r.ClampLE(metricBreakerTrips, metricBreakerTransitions)
	e.cache.RegisterMetrics(r)
}

// SetEventSink installs (or, with nil, removes — reverting to the
// no-op sink) the structured event sink on the engine and its cache.
// Safe to call concurrently with traffic and in-flight repairs; an
// event being emitted as the sink swaps lands in exactly one of the
// two sinks.
func (e *Engine) SetEventSink(s obs.Sink) {
	if s == nil {
		s = obs.Sink(obs.NopSink{})
	}
	e.sink.Store(&s)
	e.cache.SetEventSink(s)
}

// snk returns the current event sink (never nil).
func (e *Engine) snk() obs.Sink { return *e.sink.Load() }

// Cache returns the underlying protected cache (for fault injection,
// statistics, and direct access).
func (e *Engine) Cache() *pcache.Cache { return e.cache }

// Metrics returns the registry serving the engine's, scrubber's, and
// cache's instrumentation — snapshot it, publish it over expvar, or
// mount its Prometheus handler.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Read serves n bytes at addr, running the escalation ladder on any
// detected-uncorrectable error. An error return means even graceful
// degradation could not produce trustworthy data.
func (e *Engine) Read(addr uint64, n int) ([]byte, error) {
	return e.ReadCtx(context.Background(), addr, n)
}

// ReadCtx is Read with a latency bound: the escalation ladder honours
// ctx's deadline and cancellation at every rung boundary and while
// coalesced behind another request's repair. When the budget runs out
// mid-recovery the call returns a *RecoveryInProgressError (matching
// both ErrRecoveryInProgress and ctx.Err() via errors.Is) instead of
// riding the repair to the end; the repair itself keeps running and a
// later access re-enters the ladder if needed.
func (e *Engine) ReadCtx(ctx context.Context, addr uint64, n int) (out []byte, err error) {
	out, err = e.cache.Read(addr, n)
	if err == nil {
		return out, nil
	}
	err = e.ladderCtx(ctx, err, func() error {
		var e2 error
		out, e2 = e.cache.Read(addr, n)
		return e2
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto fills dst with len(dst) bytes at addr, running the
// escalation ladder on any detected-uncorrectable error — the
// allocation-free variant of Read (a clean hit allocates nothing).
func (e *Engine) ReadInto(addr uint64, dst []byte) error {
	return e.ReadIntoCtx(context.Background(), addr, dst)
}

// ReadIntoCtx is ReadInto under a deadline; see ReadCtx for the
// contract.
func (e *Engine) ReadIntoCtx(ctx context.Context, addr uint64, dst []byte) error {
	err := e.cache.ReadInto(addr, dst)
	if err == nil {
		return nil
	}
	return e.ladderCtx(ctx, err, func() error { return e.cache.ReadInto(addr, dst) })
}

// Stats returns the underlying cache's coherent counter snapshot.
func (e *Engine) Stats() pcache.Stats { return e.cache.Stats() }

// Write stores bytes at addr, running the escalation ladder on any
// detected-uncorrectable error.
func (e *Engine) Write(addr uint64, data []byte) error {
	return e.WriteCtx(context.Background(), addr, data)
}

// WriteCtx is Write under a deadline; see ReadCtx for the contract.
func (e *Engine) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	err := e.cache.Write(addr, data)
	if err == nil {
		return nil
	}
	return e.ladderCtx(ctx, err, func() error { return e.cache.Write(addr, data) })
}

// Flush writes all dirty lines back, escalating on DUEs until the
// flush completes.
func (e *Engine) Flush() error {
	return e.FlushCtx(context.Background())
}

// FlushCtx is Flush under a deadline; see ReadCtx for the contract.
// A deadline abort can leave some dirty lines unflushed.
func (e *Engine) FlushCtx(ctx context.Context) error {
	err := e.cache.Flush()
	if err == nil {
		return nil
	}
	return e.ladderCtx(ctx, err, func() error { return e.cache.Flush() })
}

// ladder is ladderCtx without a budget — kept as the unbounded entry
// point for internal callers and tests.
func (e *Engine) ladder(err error, attempt func() error) error {
	return e.ladderCtx(context.Background(), err, attempt)
}

// ladderCtx escalates a located DUE rung by rung, re-issuing attempt()
// after each rung until it succeeds, the degrade rung exhausts the
// set's ways, or ctx runs out. err must be the failing attempt's
// error. It brackets the run with RecoveryStart/End events and a
// latency observation.
func (e *Engine) ladderCtx(ctx context.Context, err error, attempt func() error) error {
	var ue *pcache.UncorrectableError
	if !errors.As(err, &ue) {
		return err // not a machine check (span error, ...): no ladder
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.dues.Inc()
	e.snk().RecoveryStart(ue.Array, ue.Set, ue.Way)
	start := e.clock()
	ferr := e.runLadder(ctx, start, &ue, attempt)
	d := e.clock().Sub(start)
	e.ladderLatency.Observe(d)
	e.snk().RecoveryEnd(ue.Array, ue.Set, ue.Way, ferr == nil, d)
	return ferr
}

// runLadder is the bounded single-flight ladder. Each round the request
// either coalesces onto its bank's in-flight repair (waiting under its
// own deadline) or becomes the repair leader and runs the rungs itself.
// *ue is rebound whenever a re-issued attempt surfaces a new fault
// location. The round bound mirrors the old degrade backstop: every
// unproductive round retires at least one way somewhere on the bank.
func (e *Engine) runLadder(ctx context.Context, start time.Time, ue **pcache.UncorrectableError, attempt func() error) error {
	// again re-issues the access; ok means done, a non-nil herr is a
	// hard (non-DUE) failure; otherwise *ue is rebound to the new fault.
	again := func() (ok bool, herr error) {
		err2 := attempt()
		if err2 == nil {
			return true, nil
		}
		var u2 *pcache.UncorrectableError
		if !errors.As(err2, &u2) {
			return false, err2
		}
		*ue = u2
		return false, nil
	}

	maxRounds := e.cache.Config().Ways + 2
	for round := 0; round < maxRounds; round++ {
		if cerr := ctx.Err(); cerr != nil {
			e.deadlineAborts.Inc()
			return fmt.Errorf("resilience: ladder abandoned before recovery: %w", cerr)
		}
		bank := e.cache.BankOf((*ue).Set)
		fl, leader := e.joinFlight(bank, *ue, start)
		if !leader {
			// Coalesce: wait for the bank's repair under our deadline,
			// then re-issue against the repaired arrays.
			e.coalesced.Inc()
			e.snk().RepairCoalesced((*ue).Array, bank, (*ue).Set, (*ue).Way)
			select {
			case <-fl.done:
			case <-ctx.Done():
				e.deadlineAborts.Inc()
				return e.progressErr(fl, ctx.Err())
			}
			ok, herr := again()
			if herr != nil {
				return herr
			}
			if ok {
				return nil
			}
			continue
		}
		done, lerr := e.lead(ctx, fl, ue, again)
		if done {
			return lerr
		}
	}
	e.exhausted.Inc()
	return &pcache.UncorrectableError{Array: (*ue).Array, Set: (*ue).Set, Way: (*ue).Way}
}

// rungOutcome classifies how the recovery rungs (1–3) ended.
type rungOutcome int

const (
	outcomeRescued     rungOutcome = iota // a rung rescued the access
	outcomeFailed                         // rungs exhausted, access still faults
	outcomeForced                         // watchdog force-escalated the repair
	outcomeCallerAbort                    // the leader's caller ran out of budget
)

// lead runs one repair as its leader: breaker admission, the recovery
// rungs, then the degrade backstop. done=false means the watchdog took
// the repair over and the (re-issued) access still faults — the caller
// should start a fresh round.
func (e *Engine) lead(ctx context.Context, fl *flight, ue **pcache.UncorrectableError, again func() (bool, error)) (done bool, err error) {
	// The caller's cancellation propagates into the flight context so a
	// rung blocked in a stall releases at the deadline, not after it.
	stop := context.AfterFunc(ctx, fl.cancel)
	defer stop()
	defer e.finishFlight(fl)

	verdict := e.admit(fl.bank)
	probe := verdict == admitProbe
	if verdict == admitShed {
		// Open breaker: the bank has stopped earning repair attempts.
		// Route straight to the degrade/bypass path — bounded work, and
		// the access still completes against backing.
		e.sheds.Inc()
		e.snk().RequestShed(fl.array, fl.bank, fl.set, fl.way)
		return true, e.degradeLoop(ctx, fl, ue, again)
	}

	outcome, herr := e.runRungs(fl, ue, again)
	if herr != nil {
		e.releaseBreaker(fl.bank, probe)
		return true, herr
	}
	switch outcome {
	case outcomeRescued:
		e.recordBreaker(fl.bank, probe, true)
		return true, nil
	case outcomeCallerAbort:
		// Says nothing about the bank's health: release any probe slot
		// without recording an outcome. The flight resolves (deferred
		// finishFlight) so waiters re-issue and a fresh leader can pick
		// the repair up.
		e.releaseBreaker(fl.bank, probe)
		e.deadlineAborts.Inc()
		return true, e.progressErr(fl, ctx.Err())
	case outcomeForced:
		// The watchdog already degraded the flight's way; re-issue and
		// let a fresh round handle any remaining damage.
		e.recordBreaker(fl.bank, probe, false)
		ok, herr := again()
		if herr != nil {
			return true, herr
		}
		if ok {
			return true, nil
		}
		return false, nil
	default: // outcomeFailed
		e.recordBreaker(fl.bank, probe, false)
		return true, e.degradeLoop(ctx, fl, ue, again)
	}
}

// runRungs is the recovery rung sequence (retry, word, full-2D) with an
// interruption check at every rung boundary. A non-nil error is a hard
// (non-DUE) failure from the re-issued access.
func (e *Engine) runRungs(fl *flight, ue **pcache.UncorrectableError, again func() (bool, error)) (rungOutcome, error) {
	if e.testHookLeadStart != nil {
		e.testHookLeadStart(fl)
	}
	// interrupted classifies a cancelled flight context: the watchdog
	// marks forced before cancelling, the caller's deadline does not.
	interrupted := func() (rungOutcome, bool) {
		if fl.ctx.Err() == nil {
			return outcomeRescued, false
		}
		if fl.forced.Load() {
			return outcomeForced, true
		}
		return outcomeCallerAbort, true
	}

	// Rung 1: retry.
	fl.rung.Store(rungRetry)
	for i := 0; i < e.cfg.MaxRetries; i++ {
		if o, stop := interrupted(); stop {
			return o, nil
		}
		e.retries.Inc()
		ok, herr := again()
		if herr != nil {
			return outcomeFailed, herr
		}
		if ok {
			e.retryHits.Inc()
			return outcomeRescued, nil
		}
	}

	// Rung 2: targeted word-level recovery.
	if o, stop := interrupted(); stop {
		return o, nil
	}
	fl.rung.Store(rungWord)
	e.wordAttempts.Inc()
	if e.cache.RecoverWord((*ue).Array, (*ue).Set, (*ue).Way) {
		ok, herr := again()
		if herr != nil {
			return outcomeFailed, herr
		}
		if ok {
			e.wordHits.Inc()
			return outcomeRescued, nil
		}
	}

	// Rung 3: full 2D recovery over the bank — the rung that models the
	// paper's whole-bank sweep, so the chaos stall point sits here.
	if o, stop := interrupted(); stop {
		return o, nil
	}
	fl.rung.Store(rungFull)
	e.stall.Hit(fl.ctx)
	if o, stop := interrupted(); stop {
		return o, nil
	}
	e.fullAttempts.Inc()
	if e.cache.RecoverSetArrays((*ue).Set) {
		ok, herr := again()
		if herr != nil {
			return outcomeFailed, herr
		}
		if ok {
			e.fullHits.Inc()
			return outcomeRescued, nil
		}
	}
	return outcomeFailed, nil
}

// degradeLoop is rung 4: graceful degradation. Each pass retires the
// named way; once a whole set is retired its accesses bypass the
// arrays, so this terminates. The bound is a backstop against a
// pathological fault source that keeps naming fresh locations.
func (e *Engine) degradeLoop(ctx context.Context, fl *flight, ue **pcache.UncorrectableError, again func() (bool, error)) error {
	fl.rung.Store(rungDegrade)
	maxDegrades := e.cache.Config().Ways + 2
	for i := 0; i < maxDegrades; i++ {
		if ctx.Err() != nil {
			e.deadlineAborts.Inc()
			return e.progressErr(fl, ctx.Err())
		}
		e.Degrade((*ue).Set, (*ue).Way)
		ok, herr := again()
		if herr != nil {
			return herr
		}
		if ok {
			return nil
		}
	}
	e.exhausted.Inc()
	return &pcache.UncorrectableError{Array: (*ue).Array, Set: (*ue).Set, Way: (*ue).Way}
}

// Degrade is rung 4 as a direct entry point (the scrubber uses it for
// sweep victims): decommission the way, count lost dirty data, and try
// to remap it to a spare row.
func (e *Engine) Degrade(set, way int) (lostDirty bool) {
	lostDirty = e.cache.Decommission(set, way)
	e.decommissions.Inc()
	e.snk().DegradeEpoch(set, way, lostDirty)
	e.tryRemap(set, way)
	return lostDirty
}

// tryRemap consults the spare-row budget: the faulty data row backing
// (set, way) joins the accumulated fault list and a repair allocation
// runs over the way-row space; if the plan covers every fault, the way
// is remapped to a spare and returned to service. A way whose remap
// fails again stays retired — its spare is presumed bad.
func (e *Engine) tryRemap(set, way int) {
	if e.cfg.SpareRows <= 0 {
		return
	}
	cc := e.cache.Config()
	key := set*cc.Ways + way
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.remappedOnce[key] {
		return
	}
	faults := append(append([]redundancy.Fault{}, e.faultyRows...),
		redundancy.Fault{Row: key})
	plan, err := redundancy.Allocate(redundancy.Config{
		Rows:      cc.Sets * cc.Ways,
		Cols:      cc.LineBytes * 8,
		SpareRows: e.cfg.SpareRows,
	}, faults)
	if err != nil || !plan.Repairable {
		return // budget exhausted: the way stays retired
	}
	e.faultyRows = faults
	e.remappedOnce[key] = true
	e.cache.Reenable(set, way)
	e.remaps.Inc()
}

// Report is the health API: everything an operator needs to judge
// whether the cache is keeping up with its fault environment.
type Report struct {
	// Accesses is the total Read/Write traffic observed.
	Accesses uint64
	// DUEs counts detected-uncorrectable events that entered the
	// ladder; DUERate is DUEs per access.
	DUEs    uint64
	DUERate float64

	// Per-rung escalation counts: attempts and the accesses each rung
	// rescued.
	Retries, RetrySuccesses      uint64
	WordAttempts, WordRecoveries uint64
	FullAttempts, FullRecoveries uint64
	Decommissions                uint64
	Remaps                       uint64
	// Exhausted counts ladder runs that failed even after degradation
	// (zero in a healthy system).
	Exhausted uint64

	// DirtyLinesLost counts decommissions that discarded unflushed
	// dirty data — the accounted data-loss events.
	DirtyLinesLost uint64

	// DisabledWays/TotalWays give the decommissioned capacity;
	// CapacityLostPct is the same as a percentage.
	DisabledWays, TotalWays int
	CapacityLostPct         float64

	// MTTR is the mean time from DUE detection to ladder completion.
	MTTR time.Duration

	// Bounded-latency activity: requests coalesced onto in-flight
	// repairs, breaker trips and sheds, stuck repairs the watchdog
	// forced over, ladder runs abandoned at a caller's deadline, and
	// how many banks sit behind an open breaker right now.
	CoalescedWaits uint64
	BreakerTrips   uint64
	BreakerSheds   uint64
	WatchdogFires  uint64
	DeadlineAborts uint64
	OpenBreakers   int64

	// Scrubber activity (zero if no scrubber is attached).
	ScrubPasses, ScrubBackoffs, ScrubVictims uint64

	// Cache is the raw cache counter snapshot.
	Cache pcache.Stats
}

// Report snapshots the engine's health from one coherent metrics
// snapshot: all cross-counter invariants (rung successes ≤ attempts,
// remaps ≤ decommissions, exhausted ≤ DUEs) hold even while ladders,
// scrub sweeps, and traffic run concurrently.
func (e *Engine) Report() Report {
	cc := e.cache.Config()
	// Snapshot the engine counters BEFORE the cache counters: every DUE
	// is preceded by the access that tripped it, so this order keeps
	// DUERate ≤ 1 without a cross-source clamp.
	snap := e.metrics.Snapshot()
	st := e.cache.Stats()
	total := cc.Sets * cc.Ways
	disabled := e.cache.DisabledWays()
	lat := snap.Histogram(metricLadderSeconds)
	r := Report{
		Accesses:        st.Accesses,
		DUEs:            snap.Counter(metricDUEs),
		Retries:         snap.Counter(metricRetries),
		RetrySuccesses:  snap.Counter(metricRetryHits),
		WordAttempts:    snap.Counter(metricWordAttempts),
		WordRecoveries:  snap.Counter(metricWordHits),
		FullAttempts:    snap.Counter(metricFullAttempts),
		FullRecoveries:  snap.Counter(metricFullHits),
		Decommissions:   snap.Counter(metricDecommissions),
		Remaps:          snap.Counter(metricRemaps),
		Exhausted:       snap.Counter(metricExhausted),
		ScrubPasses:     snap.Counter(metricScrubPasses),
		ScrubBackoffs:   snap.Counter(metricScrubBackoffs),
		ScrubVictims:    snap.Counter(metricScrubVictims),
		CoalescedWaits:  snap.Counter(metricCoalesced),
		BreakerTrips:    snap.Counter(metricBreakerTrips),
		BreakerSheds:    snap.Counter(metricSheds),
		WatchdogFires:   snap.Counter(metricWatchdogFires),
		DeadlineAborts:  snap.Counter(metricDeadlineAborts),
		OpenBreakers:    snap.Gauge(metricBreakersOpen),
		DirtyLinesLost:  st.DirtyLinesLost,
		DisabledWays:    disabled,
		TotalWays:       total,
		CapacityLostPct: 100 * float64(disabled) / float64(total),
		MTTR:            lat.Mean(),
		Cache:           st,
	}
	if r.Accesses > 0 {
		r.DUERate = float64(r.DUEs) / float64(r.Accesses)
	}
	return r
}
