package fault

import (
	"context"
	"testing"
	"time"
)

func TestStallDisarmedIsFree(t *testing.T) {
	var s Stall
	start := time.Now()
	s.Hit(context.Background())
	s.Hit(nil)
	(*Stall)(nil).Hit(context.Background())
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("disarmed Hit took %v", d)
	}
	if s.Fired() != 0 || (*Stall)(nil).Fired() != 0 {
		t.Fatalf("disarmed stall fired: %d", s.Fired())
	}
}

func TestStallBlocksForDuration(t *testing.T) {
	var s Stall
	s.Arm(20 * time.Millisecond)
	start := time.Now()
	s.Hit(context.Background())
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("armed Hit returned after %v, want >= 20ms", d)
	}
	if s.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", s.Fired())
	}
	s.Disarm()
	s.Hit(context.Background()) // must not block or count
	if s.Fired() != 1 {
		t.Fatalf("fired after disarm = %d, want 1", s.Fired())
	}
}

func TestStallReleasedByCancel(t *testing.T) {
	var s Stall
	s.Arm(time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		s.Hit(ctx)
		released <- time.Since(start)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case d := <-released:
		if d > 10*time.Second {
			t.Fatalf("cancel took %v to release stall", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Hit never returned")
	}
	if s.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", s.Fired())
	}
}
