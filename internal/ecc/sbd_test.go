package ecc

import (
	"math/rand"
	"testing"
)

func TestSBDConstruction(t *testing.T) {
	for _, k := range []int{16, 32, 64} {
		s, err := NewSECDEDSBD(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if s.DataBits() != k {
			t.Fatalf("k=%d: data bits %d", k, s.DataBits())
		}
		// S8ED needs at least 9 check bits (a byte's independent columns
		// would otherwise span the whole space).
		if s.CheckBits() < 9 || s.CheckBits() > 12 {
			t.Fatalf("k=%d: SBD uses %d check bits", k, s.CheckBits())
		}
	}
	if _, err := NewSECDEDSBD(60); err == nil {
		t.Fatal("non-byte-multiple k accepted")
	}
}

func TestSBDSingleBitCorrection(t *testing.T) {
	s := MustSECDEDSBD(64)
	rng := rand.New(rand.NewSource(1))
	d := randVec(rng, 64)
	clean := s.Encode(d)
	for pos := 0; pos < clean.Len(); pos++ {
		cw := clean.Clone()
		cw.Flip(pos)
		res, n := s.Decode(cw)
		if res != Corrected || n != 1 {
			t.Fatalf("pos %d: %v/%d", pos, res, n)
		}
		if !cw.Equal(clean) {
			t.Fatalf("pos %d: not restored", pos)
		}
	}
}

func TestSBDDoubleBitDetection(t *testing.T) {
	s := MustSECDEDSBD(32)
	rng := rand.New(rand.NewSource(2))
	clean := s.Encode(randVec(rng, 32))
	n := clean.Len()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cw := clean.Clone()
			cw.Flip(a)
			cw.Flip(b)
			if res, _ := s.Decode(cw); res != Detected {
				t.Fatalf("double (%d,%d): %v", a, b, res)
			}
		}
	}
}

func TestSBDByteErrorDetectionExhaustive(t *testing.T) {
	// THE defining property: every multi-bit pattern confined to one
	// data byte is detected — never miscorrected. Exhaustive over all
	// bytes x all 247 multi-bit patterns.
	s := MustSECDEDSBD(64)
	rng := rand.New(rand.NewSource(3))
	clean := s.Encode(randVec(rng, 64))
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		for mask := 0; mask < 256; mask++ {
			pop := 0
			for b := 0; b < 8; b++ {
				if mask&(1<<b) != 0 {
					pop++
				}
			}
			if pop < 2 {
				continue
			}
			cw := clean.Clone()
			for b := 0; b < 8; b++ {
				if mask&(1<<b) != 0 {
					cw.Flip(byteIdx*8 + b)
				}
			}
			res, _ := s.Decode(cw)
			if res != Detected {
				t.Fatalf("byte %d mask %#x: %v (miscorrection!)", byteIdx, mask, res)
			}
		}
	}
}

func TestPlainSECDEDMissesByteErrors(t *testing.T) {
	// Contrast: the plain Hsiao code miscorrects or misses some
	// byte-confined patterns — the gap SBD closes.
	s := MustSECDED(64)
	rng := rand.New(rand.NewSource(4))
	clean := s.Encode(randVec(rng, 64))
	bad := 0
	for byteIdx := 0; byteIdx < 8; byteIdx++ {
		for mask := 0; mask < 256; mask++ {
			pop := 0
			for b := 0; b < 8; b++ {
				if mask&(1<<b) != 0 {
					pop++
				}
			}
			if pop < 3 || pop%2 == 0 {
				continue // odd >= 3 patterns are the dangerous ones
			}
			cw := clean.Clone()
			for b := 0; b < 8; b++ {
				if mask&(1<<b) != 0 {
					cw.Flip(byteIdx*8 + b)
				}
			}
			if res, _ := s.Decode(cw); res == Corrected {
				bad++ // miscorrection: plausible single-bit fix applied
			}
		}
	}
	if bad == 0 {
		t.Skip("this Hsiao instance happens to detect all byte errors; construction not guaranteed to")
	}
	t.Logf("plain SECDED miscorrected %d byte-confined patterns", bad)
}

func TestSBDCleanRoundTrip(t *testing.T) {
	s := MustSECDEDSBD(64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		d := randVec(rng, 64)
		cw := s.Encode(d)
		if res, _ := s.Decode(cw); res != Clean {
			t.Fatal("clean decode failed")
		}
		if !s.Data(cw).Equal(d) {
			t.Fatal("data mismatch")
		}
	}
}

func TestSBDAsHorizontalCode(t *testing.T) {
	var h HorizontalCode = MustSECDEDSBD(64)
	cw := h.Encode(randVec(rand.New(rand.NewSource(6)), 64))
	if h.SyndromeBits(cw) != 0 {
		t.Fatal("clean syndrome nonzero")
	}
	cw.Flip(10)
	if h.SyndromeBits(cw) == 0 {
		t.Fatal("error invisible")
	}
	if h.ParityColumn(10) == 0 {
		t.Fatal("zero parity column")
	}
}

func TestSBDCached(t *testing.T) {
	a := MustSECDEDSBD(64)
	b := MustSECDEDSBD(64)
	if a != b {
		t.Fatal("construction not cached")
	}
}

func TestS4EDMatchesSECDEDCheckBits(t *testing.T) {
	// The classic (72,64) SEC-DED-S4ED: nibble-error detection at the
	// SAME check-bit count as plain SECDED — the paper's "very low
	// overhead" configuration.
	s := MustSECDEDSbED(64, 4)
	if s.CheckBits() != MustSECDED(64).CheckBits() {
		t.Fatalf("S4ED uses %d check bits, SECDED uses %d",
			s.CheckBits(), MustSECDED(64).CheckBits())
	}
	if s.Name() != "SECDED-S4ED" || s.ByteWidth() != 4 {
		t.Fatalf("metadata: %s/%d", s.Name(), s.ByteWidth())
	}
}

func TestS4EDNibbleDetectionExhaustive(t *testing.T) {
	s := MustSECDEDSbED(64, 4)
	rng := rand.New(rand.NewSource(9))
	clean := s.Encode(randVec(rng, 64))
	for nib := 0; nib < 16; nib++ {
		for mask := 0; mask < 16; mask++ {
			pop := 0
			for b := 0; b < 4; b++ {
				if mask&(1<<b) != 0 {
					pop++
				}
			}
			if pop < 2 {
				continue
			}
			cw := clean.Clone()
			for b := 0; b < 4; b++ {
				if mask&(1<<b) != 0 {
					cw.Flip(nib*4 + b)
				}
			}
			if res, _ := s.Decode(cw); res != Detected {
				t.Fatalf("nibble %d mask %#x: %v", nib, mask, res)
			}
		}
	}
}

func TestSbEDRejectsBadParams(t *testing.T) {
	if _, err := NewSECDEDSbED(64, 5); err == nil {
		t.Fatal("b=5 accepted")
	}
	if _, err := NewSECDEDSbED(30, 4); err == nil {
		t.Fatal("k not divisible by b accepted")
	}
}
