// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant models or
// simulations and returns a Table whose rows mirror what the paper
// reports, so the repository regenerates every artefact of §5 (and the
// illustrative Figs. 1-3) from first principles.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier, e.g. "fig7a".
	ID string
	// Title describes the artefact, e.g. "Fig. 7(a): 64kB L1 overheads".
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes carries caveats (substitutions, calibration remarks).
	Notes []string
}

// Render returns a human-readable fixed-width rendering.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Options sizes the simulation-backed experiments.
type Options struct {
	// Samples is the number of matched-pair samples per data point.
	Samples int
	// Warmup and Measure are the per-run cycle counts.
	Warmup, Measure uint64
	// Trials is the number of fault-injection trials per cell.
	Trials int
	// Seed anchors all randomness.
	Seed int64
}

// Quick returns options sized for tests and smoke runs (seconds).
func Quick() Options {
	return Options{Samples: 1, Warmup: 30000, Measure: 20000, Trials: 3, Seed: 1}
}

// Full returns options sized for the paper-style run (minutes).
func Full() Options {
	return Options{Samples: 5, Warmup: 150000, Measure: 50000, Trials: 20, Seed: 1}
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", x*100) }
func f2(x float64) string   { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string   { return fmt.Sprintf("%.1f", x) }
func itoa(i int) string     { return fmt.Sprintf("%d", i) }
func norm(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }
