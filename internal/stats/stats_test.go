package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonPMFBasics(t *testing.T) {
	if p := PoissonPMF(0, 0); p != 1 {
		t.Fatalf("P(0;0) = %v", p)
	}
	if p := PoissonPMF(0, 3); p != 0 {
		t.Fatalf("P(3;0) = %v", p)
	}
	// P(0; 2) = e^-2.
	if p := PoissonPMF(2, 0); math.Abs(p-math.Exp(-2)) > 1e-12 {
		t.Fatalf("P(0;2) = %v", p)
	}
	// PMF sums to ~1.
	sum := 0.0
	for k := 0; k < 100; k++ {
		sum += PoissonPMF(7.3, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sum = %v", sum)
	}
}

func TestPoissonCDFMonotone(t *testing.T) {
	prev := 0.0
	for k := 0; k < 50; k++ {
		c := PoissonCDF(10, k)
		if c < prev {
			t.Fatalf("CDF not monotone at k=%d", k)
		}
		prev = c
	}
	if c := PoissonCDF(10, 49); math.Abs(c-1) > 1e-9 {
		t.Fatalf("CDF(49;10) = %v", c)
	}
	if PoissonCDF(5, -1) != 0 {
		t.Fatal("CDF(-1) != 0")
	}
}

func TestPoissonCDFLargeLambdaApprox(t *testing.T) {
	// The normal approximation at the mean should be ~0.5.
	c := PoissonCDF(10000, 10000)
	if c < 0.45 || c > 0.55 {
		t.Fatalf("CDF(mean) = %v", c)
	}
}

func TestBinomialTail(t *testing.T) {
	// Binomial(10, 0.5): P(X <= 5) ~ 0.623.
	c := BinomialTailLE(10, 0.5, 5)
	if math.Abs(c-0.623046875) > 1e-9 {
		t.Fatalf("binom tail = %v", c)
	}
	if BinomialTailLE(10, 0.5, 10) != 1 {
		t.Fatal("P(X<=n) != 1")
	}
	if BinomialTailLE(10, 0.5, -1) != 0 {
		t.Fatal("P(X<=-1) != 0")
	}
	if BinomialTailLE(10, 0, 0) != 1 {
		t.Fatal("p=0 tail")
	}
	if BinomialTailLE(10, 1, 5) != 0 {
		t.Fatal("p=1 tail")
	}
	// Poisson regime agrees with direct Poisson.
	big := BinomialTailLE(2_000_000, 1e-6, 3)
	pois := PoissonCDF(2.0, 3)
	if math.Abs(big-pois) > 1e-6 {
		t.Fatalf("poisson regime %v vs %v", big, pois)
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.StdDev()-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
	var empty Sample
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Fatal("empty sample summary")
	}
	if !math.IsInf(empty.CI95(), 1) {
		t.Fatal("empty CI should be infinite")
	}
}

func TestSampleCIShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Sample
	for i := 0; i < 20; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestMatchedPair(t *testing.T) {
	var mp MatchedPair
	// Treatment consistently 3% below baseline.
	for i := 1; i <= 10; i++ {
		base := float64(i)
		if err := mp.Add(base, base*0.97); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(mp.MeanDelta()+0.03) > 1e-12 {
		t.Fatalf("delta = %v", mp.MeanDelta())
	}
	if mp.N() != 10 {
		t.Fatalf("n = %d", mp.N())
	}
	if err := mp.Add(0, 1); err == nil {
		t.Fatal("zero baseline accepted")
	}
}
