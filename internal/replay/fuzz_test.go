package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayVsBacking feeds raw trace text through the parser and the
// replayer and asserts the soak invariant on whatever parses: no event
// sequence over in-coverage faults (OpFlip is gated to strike only
// clean-checking words) may ever reach the SILENT cell of the
// taxonomy, and replay must be bit-deterministic. OpPoke traces are
// excluded — corrupting the backing behind the cache's back is the one
// documented way to force silent, and the expect-silent path is pinned
// by TestOracleSelfValidation/TestCommittedTraces instead. The corpus
// seeds with every committed shrunk trace, so the fuzzer starts from
// event shapes that have actually produced forgeries before.
func FuzzReplayVsBacking(f *testing.F) {
	paths, err := filepath.Glob("testdata/*.trace")
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := Parse(bytes.NewReader(raw))
		if err != nil {
			t.Skip()
		}
		// Bound the geometry before building anything: the interesting
		// state space is event interleavings, not array sizes.
		c := tr.Cfg
		if c.Sets <= 0 || c.Sets > 256 || c.Ways <= 0 || c.Ways > 8 ||
			c.LineBytes <= 0 || c.LineBytes > 256 ||
			c.Banks <= 0 || c.Banks > 4 ||
			c.VerticalGroups < 0 || c.VerticalGroups > 64 ||
			c.SpareRows < 0 || c.SpareRows > 64 ||
			c.MaxRetries < 0 || c.MaxRetries > 4 ||
			len(tr.Events) > 2000 {
			t.Skip()
		}
		if tr.ExpectSilent {
			t.Skip()
		}
		for _, e := range tr.Events {
			if e.Op == OpPoke {
				t.Skip()
			}
		}
		res, err := Run(tr)
		if err != nil {
			t.Skip() // geometry rejected by the cache constructor
		}
		if res.Silent > 0 {
			t.Fatalf("fuzzed trace reached silent corruption: %v", res.SilentDetails)
		}
		again, err := Run(tr)
		if err != nil {
			t.Fatalf("second replay errored: %v", err)
		}
		if again.StateHash != res.StateHash {
			t.Fatalf("replay not deterministic: %016x != %016x", again.StateHash, res.StateHash)
		}
	})
}
