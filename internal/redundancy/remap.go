package redundancy

import "fmt"

// Remapper applies a repair plan at access time: addresses falling on a
// repaired row or column are redirected to spare lines, the way a BISR
// controller programs its address-match registers (§2.3, refs [8,24]).
type Remapper struct {
	cfg     Config
	rowMap  map[int]int // faulty row -> spare row index
	colMap  map[int]int // faulty col -> spare col index
	nextRow int
	nextCol int
}

// NewRemapper builds a remapper for the plan. It fails if the plan
// needs more spares than the configuration provides.
func NewRemapper(cfg Config, plan Plan) (*Remapper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(plan.RepairRows) > cfg.SpareRows {
		return nil, fmt.Errorf("redundancy: plan needs %d spare rows, have %d",
			len(plan.RepairRows), cfg.SpareRows)
	}
	if len(plan.RepairCols) > cfg.SpareCols {
		return nil, fmt.Errorf("redundancy: plan needs %d spare cols, have %d",
			len(plan.RepairCols), cfg.SpareCols)
	}
	r := &Remapper{cfg: cfg, rowMap: map[int]int{}, colMap: map[int]int{}}
	for _, row := range plan.RepairRows {
		r.rowMap[row] = r.nextRow
		r.nextRow++
	}
	for _, col := range plan.RepairCols {
		r.colMap[col] = r.nextCol
		r.nextCol++
	}
	return r, nil
}

// Translate maps a logical (row, col) to its physical location. Spare
// rows live at indices Rows..Rows+SpareRows-1 and spare columns at
// Cols..Cols+SpareCols-1 of the augmented array.
func (r *Remapper) Translate(row, col int) (prow, pcol int) {
	prow, pcol = row, col
	if s, ok := r.rowMap[row]; ok {
		prow = r.cfg.Rows + s
	}
	if s, ok := r.colMap[col]; ok {
		pcol = r.cfg.Cols + s
	}
	return prow, pcol
}

// Redirected reports whether the logical cell is served by a spare.
func (r *Remapper) Redirected(row, col int) bool {
	_, rr := r.rowMap[row]
	_, cc := r.colMap[col]
	return rr || cc
}

// SparesUsed returns the consumed spare counts.
func (r *Remapper) SparesUsed() (rows, cols int) {
	return len(r.rowMap), len(r.colMap)
}
