package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("NewField(%d): %v", m, err)
		}
		if f.Size() != 1<<uint(m) || f.N() != 1<<uint(m)-1 {
			t.Fatalf("m=%d size=%d n=%d", m, f.Size(), f.N())
		}
	}
	if _, err := NewField(1); err == nil {
		t.Fatal("m=1 should fail")
	}
	if _, err := NewField(17); err == nil {
		t.Fatal("m=17 should fail")
	}
}

func TestNonPrimitivePolyRejected(t *testing.T) {
	// x^4 + 1 = (x+1)^4 is not even irreducible.
	if _, err := NewFieldPoly(4, 0x11); err == nil {
		t.Fatal("expected rejection of non-primitive polynomial")
	}
	// x^4+x^3+x^2+x+1 is irreducible but NOT primitive (order 5).
	if _, err := NewFieldPoly(4, 0x1F); err == nil {
		t.Fatal("expected rejection of irreducible-but-not-primitive polynomial")
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, m := range []int{3, 4, 8} {
		f := MustField(m)
		n := f.Size()
		// Exhaustive over small fields.
		lim := n
		if m == 8 {
			lim = 64 // sampled for GF(256)
		}
		for ai := 0; ai < lim; ai++ {
			for bi := 0; bi < lim; bi++ {
				a, b := uint16(ai), uint16(bi)
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("m=%d: mul not commutative at %d,%d", m, a, b)
				}
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("m=%d: add not commutative", m)
				}
				if f.Mul(a, 1) != a {
					t.Fatalf("m=%d: 1 not identity for %d", m, a)
				}
				if f.Mul(a, 0) != 0 {
					t.Fatalf("m=%d: 0 not absorbing", m)
				}
			}
		}
	}
}

func TestDistributivityQuick(t *testing.T) {
	f := MustField(8)
	prop := func(a, b, c uint16) bool {
		a, b, c = a&255, b&255, c&255
		left := f.Mul(a, f.Add(b, c))
		right := f.Add(f.Mul(a, b), f.Mul(a, c))
		return left == right
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAssociativityQuick(t *testing.T) {
	f := MustField(10)
	mask := uint16(f.Size() - 1)
	prop := func(a, b, c uint16) bool {
		a, b, c = a&mask, b&mask, c&mask
		return f.Mul(a, f.Mul(b, c)) == f.Mul(f.Mul(a, b), c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseAndDiv(t *testing.T) {
	for _, m := range []int{4, 7, 9} {
		f := MustField(m)
		for a := uint16(1); int(a) < f.Size(); a++ {
			inv := f.Inv(a)
			if f.Mul(a, inv) != 1 {
				t.Fatalf("m=%d: a*inv(a) != 1 for a=%d", m, a)
			}
			if f.Div(a, a) != 1 {
				t.Fatalf("m=%d: a/a != 1", m)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := MustField(4)
	for i, fn := range []func(){
		func() { f.Div(3, 0) },
		func() { f.Inv(0) },
		func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	f := MustField(8)
	for i := 0; i < f.N(); i++ {
		a := f.Exp(i)
		if f.Log(a) != i {
			t.Fatalf("log(exp(%d)) = %d", i, f.Log(a))
		}
	}
	// Exp handles negative and overlarge exponents.
	if f.Exp(-1) != f.Exp(f.N()-1) {
		t.Fatal("Exp(-1) wrong")
	}
	if f.Exp(f.N()) != 1 {
		t.Fatal("Exp(n) should be alpha^0 = 1")
	}
}

func TestPow(t *testing.T) {
	f := MustField(6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := uint16(rng.Intn(f.Size()))
		k := rng.Intn(200)
		want := uint16(1)
		for i := 0; i < k; i++ {
			want = f.Mul(want, a)
		}
		if got := f.Pow(a, k); got != want {
			t.Fatalf("Pow(%d,%d) = %d, want %d", a, k, got, want)
		}
	}
	if f.Pow(0, 0) != 1 {
		t.Fatal("0^0 should be 1 by convention")
	}
	if f.Pow(0, 5) != 0 {
		t.Fatal("0^5 should be 0")
	}
}

func TestFermat(t *testing.T) {
	// a^(2^m - 1) = 1 for all nonzero a.
	f := MustField(8)
	for a := uint16(1); int(a) < f.Size(); a++ {
		if f.Pow(a, f.N()) != 1 {
			t.Fatalf("a^(n) != 1 for a=%d", a)
		}
	}
}
