// Package cpu models the two CMP core microarchitectures of the
// paper's baselines at the level the cache experiments need: a "fat"
// 4-wide out-of-order core with a reorder window, non-blocking loads
// and a 64-entry store queue, and a "lean" 2-wide in-order core with 4
// fine-grain-multithreaded hardware contexts. Cores interact with the
// memory hierarchy only through the MemPort interface; the cycle-level
// simulator in internal/sim implements it with port, bank, and MSHR
// contention.
package cpu

import (
	"fmt"

	"twodcache/internal/workload"
)

// MemPort is the per-core interface to the L1 data cache, offered by
// the simulator each cycle.
type MemPort interface {
	// TryLoad attempts to issue a load this cycle. It returns a
	// completion token and whether the cache accepted the access
	// (a free port and MSHR were available).
	TryLoad(addr uint64) (token uint64, ok bool)
	// LoadDone reports whether the load behind token has completed.
	LoadDone(token uint64) bool
	// TryStore attempts to retire one store from the store queue into
	// the L1 this cycle.
	TryStore(addr uint64) bool
}

// Core is a simulated core: the simulator ticks it once per cycle.
type Core interface {
	// Tick advances one cycle, issuing memory operations through mem.
	Tick(mem MemPort)
	// Committed returns the cumulative number of committed
	// instructions (the IPC numerator).
	Committed() uint64
}

// robKind classifies reorder-buffer entries.
type robKind uint8

const (
	kindPlain robKind = iota
	kindLoad
	kindStore
)

type robEntry struct {
	kind  robKind
	token uint64
	done  bool
}

// FatCore approximates a 4-wide out-of-order superscalar: dispatch runs
// up to Window instructions ahead of commit, loads issue non-blocking
// (bounded by the window and the L1's MSHRs), stores retire into a
// store queue that drains in the background. Commit is in-order and
// stalls on incomplete loads at the head — the mechanism by which L1
// port contention from 2D's read-before-write traffic costs IPC.
type FatCore struct {
	width  int
	window int
	sqCap  int

	trace   workload.Source
	rob     []robEntry
	sq      []uint64
	pending *workload.Instr // fetched but not yet dispatched (stall)

	committed    uint64
	sqFullStalls uint64
	portRejects  uint64
}

// NewFatCore builds the fat core: width-wide, with the given reorder
// window and store-queue capacity, consuming the given trace.
func NewFatCore(width, window, sqCap int, trace workload.Source) (*FatCore, error) {
	if width <= 0 || window <= 0 || sqCap <= 0 {
		return nil, fmt.Errorf("cpu: invalid fat core parameters %d/%d/%d", width, window, sqCap)
	}
	if trace == nil {
		return nil, fmt.Errorf("cpu: nil trace")
	}
	return &FatCore{width: width, window: window, sqCap: sqCap, trace: trace}, nil
}

// Committed returns the cumulative committed instruction count.
func (c *FatCore) Committed() uint64 { return c.committed }

// SQFullStalls counts dispatch stalls due to a full store queue.
func (c *FatCore) SQFullStalls() uint64 { return c.sqFullStalls }

// PortRejects counts load issues rejected by the L1.
func (c *FatCore) PortRejects() uint64 { return c.portRejects }

// Tick advances the core one cycle.
func (c *FatCore) Tick(mem MemPort) {
	// 1. Drain the store queue in the background (up to two per cycle,
	// matching a dual-ported L1's store bandwidth).
	for n := 0; n < 2 && len(c.sq) > 0; n++ {
		if !mem.TryStore(c.sq[0]) {
			break
		}
		c.sq = c.sq[1:]
	}
	// 2. Resolve outstanding loads.
	for i := range c.rob {
		if c.rob[i].kind == kindLoad && !c.rob[i].done && mem.LoadDone(c.rob[i].token) {
			c.rob[i].done = true
		}
	}
	// 3. Dispatch up to width instructions into the window.
dispatch:
	for n := 0; n < c.width && len(c.rob) < c.window; n++ {
		var in workload.Instr
		if c.pending != nil {
			in = *c.pending
			c.pending = nil
		} else {
			in = c.trace.Next()
		}
		switch {
		case in.IsMem && !in.IsWrite:
			token, ok := mem.TryLoad(in.Addr)
			if !ok {
				c.portRejects++
				c.pending = &in
				break dispatch
			}
			c.rob = append(c.rob, robEntry{kind: kindLoad, token: token})
		case in.IsMem && in.IsWrite:
			if len(c.sq) >= c.sqCap {
				c.sqFullStalls++
				c.pending = &in
				break dispatch
			}
			c.sq = append(c.sq, in.Addr)
			c.rob = append(c.rob, robEntry{kind: kindStore})
		default:
			c.rob = append(c.rob, robEntry{kind: kindPlain})
		}
	}
	// 4. Commit in order.
	for n := 0; n < c.width && len(c.rob) > 0; n++ {
		if c.rob[0].kind == kindLoad && !c.rob[0].done {
			break
		}
		c.rob = c.rob[1:]
		c.committed++
	}
}

var _ Core = (*FatCore)(nil)

// threadCtx is one hardware context of the lean core.
type threadCtx struct {
	trace        workload.Source
	blockedToken uint64
	blocked      bool
	pending      *workload.Instr
}

// LeanCore approximates a 2-wide in-order core with fine-grain
// multithreading: each cycle it issues from ready threads round-robin;
// a thread issuing a load blocks until the load completes (the next
// thread hides the latency, as in Niagara-class designs). Stores enter
// a shared store queue drained in the background.
type LeanCore struct {
	width int
	sqCap int

	threads []*threadCtx
	rr      int
	sq      []uint64

	committed    uint64
	sqFullStalls uint64
	portRejects  uint64
}

// NewLeanCore builds the lean core over one trace per hardware thread.
func NewLeanCore(width, sqCap int, traces []workload.Source) (*LeanCore, error) {
	if width <= 0 || sqCap <= 0 || len(traces) == 0 {
		return nil, fmt.Errorf("cpu: invalid lean core parameters")
	}
	c := &LeanCore{width: width, sqCap: sqCap}
	for _, tr := range traces {
		if tr == nil {
			return nil, fmt.Errorf("cpu: nil thread trace")
		}
		c.threads = append(c.threads, &threadCtx{trace: tr})
	}
	return c, nil
}

// Committed returns the cumulative committed instruction count across
// all threads.
func (c *LeanCore) Committed() uint64 { return c.committed }

// SQFullStalls counts issue stalls due to a full store queue.
func (c *LeanCore) SQFullStalls() uint64 { return c.sqFullStalls }

// PortRejects counts load issues rejected by the L1.
func (c *LeanCore) PortRejects() uint64 { return c.portRejects }

// Tick advances the core one cycle.
func (c *LeanCore) Tick(mem MemPort) {
	// Drain one store per cycle (single-ported L1).
	if len(c.sq) > 0 && mem.TryStore(c.sq[0]) {
		c.sq = c.sq[1:]
	}
	// Unblock threads whose loads completed.
	for _, th := range c.threads {
		if th.blocked && mem.LoadDone(th.blockedToken) {
			th.blocked = false
		}
	}
	issued := 0
	// Round-robin over threads; an in-order thread issues at most one
	// instruction per cycle.
	for scan := 0; scan < len(c.threads) && issued < c.width; scan++ {
		th := c.threads[(c.rr+scan)%len(c.threads)]
		if th.blocked {
			continue
		}
		var in workload.Instr
		if th.pending != nil {
			in = *th.pending
			th.pending = nil
		} else {
			in = th.trace.Next()
		}
		switch {
		case in.IsMem && !in.IsWrite:
			token, ok := mem.TryLoad(in.Addr)
			if !ok {
				c.portRejects++
				th.pending = &in
				continue
			}
			th.blocked = true
			th.blockedToken = token
			c.committed++ // load will complete; account at issue
		case in.IsMem && in.IsWrite:
			if len(c.sq) >= c.sqCap {
				c.sqFullStalls++
				th.pending = &in
				continue
			}
			c.sq = append(c.sq, in.Addr)
			c.committed++
		default:
			c.committed++
		}
		issued++
	}
	c.rr = (c.rr + 1) % len(c.threads)
}

var _ Core = (*LeanCore)(nil)
