// Soak runs the online resilience engine under fire: N client
// goroutines read and write through a ResilientCache while a
// continuous Poisson fault storm upsets the protected arrays and the
// traffic-aware background scrubber sweeps them, for a bounded
// duration. Every client checks its reads against a private shadow
// model using the loss-epoch protocol: a mismatch is legitimate only
// if the set's loss epoch advanced (a reported DUE led to a repair or
// decommission) since the value was written — otherwise it is SILENT
// corruption and the run fails. On success the health report is
// printed and the process exits 0.
//
// The storm flips at most one bit per currently-clean word per event —
// within the horizontal code's guaranteed detection — so every
// corruption is detectable; whether it is *correctable* is up to the
// 2D code, and the escalation ladder absorbs the remainder. This keeps
// "zero silent corruptions" a hard invariant rather than a statistical
// hope.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twodcache"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

func main() {
	var (
		duration      = flag.Duration("duration", 2*time.Second, "soak duration")
		clients       = flag.Int("clients", 4, "concurrent reader/writer goroutines")
		sets          = flag.Int("sets", 64, "cache sets")
		ways          = flag.Int("ways", 4, "cache ways")
		banks         = flag.Int("banks", 8, "independently locked banks")
		lineBytes     = flag.Int("line", 64, "line size in bytes")
		secded        = flag.Bool("secded", false, "SECDED horizontal code instead of EDC8")
		spares        = flag.Int("spares", 8, "spare-row budget for remapping")
		faultInterval = flag.Duration("fault-interval", 500*time.Microsecond, "mean time between fault events")
		scrubInterval = flag.Duration("scrub-interval", 2*time.Millisecond, "pause between scrub sweeps")
		highRate      = flag.Float64("scrub-high-rate", 200_000, "accesses/sec above which the scrubber backs off")
		seed          = flag.Int64("seed", 1, "random seed")
		statsEvery    = flag.Duration("stats-interval", 500*time.Millisecond, "period of the live stats line (0 disables)")
		httpAddr      = flag.String("http", "", "serve expvar (/debug/vars) and Prometheus text (/metrics) on this address")
	)
	flag.Parse()
	if *clients < 1 {
		fmt.Fprintln(os.Stderr, "soak: need at least one client")
		os.Exit(2)
	}

	backing := twodcache.NewMemoryBacking(*lineBytes)
	reg := twodcache.NewMetricsRegistry()
	eng, err := twodcache.NewResilientCache(twodcache.ProtectedCacheConfig{
		Sets: *sets, Ways: *ways, LineBytes: *lineBytes,
		SECDEDHorizontal: *secded, Banks: *banks,
	}, backing, twodcache.ResilienceConfig{SpareRows: *spares, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(2)
	}
	cache := eng.Cache()
	scrubber := eng.NewScrubber(twodcache.ScrubberConfig{
		Interval: *scrubInterval,
		HighRate: *highRate,
	})

	// Serve the registry over expvar (/debug/vars) and Prometheus text
	// (/metrics) when asked. The registry snapshots on demand, so both
	// endpoints always return coherent, clamped values.
	if *httpAddr != "" {
		reg.PublishExpvar("twodcache")
		http.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "soak: http:", err)
			}
		}()
		fmt.Printf("soak: serving /debug/vars and /metrics on %s\n", *httpAddr)
	}

	// The run ends at the deadline OR on SIGINT/SIGTERM: either way the
	// context is cancelled, the workers drain, and the final obs-backed
	// report below always prints.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var (
		silent     atomic.Uint64 // UNACCOUNTED mismatches: must stay zero
		accounted  atomic.Uint64 // mismatches explained by a loss-epoch advance
		reported   atomic.Uint64 // DUEs surfaced to clients even after the ladder
		clientOps  atomic.Uint64
		wg         sync.WaitGroup
		scrubDone  = make(chan struct{})
		stormDone  = make(chan struct{})
		stormCount atomic.Uint64
	)

	// Background scrubber.
	go func() {
		defer close(scrubDone)
		_ = scrubber.Run(ctx)
	}()

	// Continuous Poisson fault storm. Each event lands under the bank
	// lock so it races traffic at event granularity, never mid-word,
	// and only strikes currently-clean words (see package comment).
	go func() {
		defer close(stormDone)
		storm := fault.NewStorm(fault.StormConfig{Seed: *seed, MeanInterval: *faultInterval})
		rng := rand.New(rand.NewSource(*seed + 7))
		oneEvent := func() {
			bi := rng.Intn(cache.NumBanks())
			hitTags := rng.Intn(4) == 0
			cache.WithBankLock(bi, func(data, tags *twod.Array) {
				a := data
				if hitTags {
					a = tags
				}
				p := storm.NextEvent(a.Rows(), a.RowBits())
				for _, fl := range p.Flips {
					w, _ := a.Layout().Locate(fl.Col)
					if _, ok := a.TryRead(fl.Row, w); ok {
						a.FlipBit(fl.Row, fl.Col)
					}
				}
				stormCount.Add(1)
			})
		}
		// Sub-millisecond inter-arrival times are far below Go timer
		// granularity, so drive the Poisson process from a 1ms ticker
		// and drain every arrival that fell due within the tick.
		const tick = time.Millisecond
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		pending := storm.NextDelay()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for pending -= tick; pending <= 0; pending += storm.NextDelay() {
				oneEvent()
			}
		}
	}()

	// Live stats line, straight off coherent registry snapshots.
	statsDone := make(chan struct{})
	go func() {
		defer close(statsDone)
		if *statsEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		start := time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			s := reg.Snapshot()
			lat := s.Histogram("resilience_ladder_seconds")
			fmt.Printf("soak: t=%5.1fs acc=%d hits=%d dues=%d mttr=%v scrubs=%d victims=%d disabled=%d faults=%d\n",
				time.Since(start).Seconds(),
				s.Counter("pcache_accesses_total"),
				s.Counter("pcache_hits_total"),
				s.Counter("resilience_dues_total"),
				lat.Mean().Round(time.Microsecond),
				s.Counter("scrub_passes_total"),
				s.Counter("scrub_victims_total"),
				s.Gauge("pcache_disabled_ways"),
				stormCount.Load())
		}
	}()

	// Clients: disjoint line ownership (line % clients == id), private
	// shadow model, loss-epoch accounting.
	lines := uint64(4 * *sets) // 4x the sets: plenty of conflict misses
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(100+id)))
			shadow := map[uint64]byte{}
			wep := map[uint64]uint64{}
			var owned []uint64
			for l := uint64(id); l < lines; l += uint64(*clients) {
				owned = append(owned, l)
			}
			setOf := func(addr uint64) int {
				return int((addr / uint64(*lineBytes)) % uint64(*sets))
			}
			for ctx.Err() == nil {
				clientOps.Add(1)
				l := owned[rng.Intn(len(owned))]
				addr := l*uint64(*lineBytes) + uint64(rng.Intn(*lineBytes))
				set := setOf(addr)
				if rng.Intn(5) < 2 { // 40% writes
					val := byte(rng.Intn(256))
					// Capture the epoch BEFORE the write: a degrade racing
					// the write then shows an advance, never a stale record.
					e0 := cache.LossEpoch(set)
					if err := eng.Write(addr, []byte{val}); err != nil {
						reported.Add(1)
						cache.Repair(addr)
						delete(shadow, addr)
						continue
					}
					shadow[addr] = val
					wep[addr] = e0
					continue
				}
				want, tracked := shadow[addr]
				got, err := eng.Read(addr, 1)
				if err != nil {
					// The ladder itself gave up — still a *reported* DUE,
					// never silent. Repair and drop the stale expectation.
					reported.Add(1)
					cache.Repair(addr)
					delete(shadow, addr)
					continue
				}
				if tracked && got[0] != want {
					if cache.LossEpoch(set) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x: got %d want %d (loss epoch unmoved)\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
					// Either way the cache's view is now authoritative.
					e0 := cache.LossEpoch(set)
					shadow[addr] = got[0]
					wep[addr] = e0
				}
			}

			// Final sweep: after the storm stops, every tracked byte must
			// still be explained.
			<-stormDone
			for addr, want := range shadow {
				got, err := eng.Read(addr, 1)
				if err != nil {
					reported.Add(1)
					cache.Repair(addr)
					continue
				}
				if got[0] != want {
					if cache.LossEpoch(setOf(addr)) == wep[addr] {
						silent.Add(1)
						fmt.Fprintf(os.Stderr,
							"soak: SILENT corruption at %#x on final sweep: got %d want %d\n",
							addr, got[0], want)
					} else {
						accounted.Add(1)
					}
				}
			}
		}(id)
	}

	wg.Wait()
	interrupted := ctx.Err() != nil && context.Cause(ctx) != context.DeadlineExceeded
	cancel()
	<-scrubDone
	<-stormDone
	<-statsDone
	if err := eng.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "soak: final flush:", err)
	}

	if interrupted {
		fmt.Println("soak: interrupted — drained workers, printing final report")
	}
	rep := eng.Report()
	fmt.Printf("soak: %v, %d clients, %d client ops, %d fault events\n",
		*duration, *clients, clientOps.Load(), stormCount.Load())
	fmt.Print(rep.String())
	fmt.Printf("  accounting:  %d accounted losses, %d ladder-exhausted DUEs, %d SILENT corruptions\n",
		accounted.Load(), reported.Load(), silent.Load())

	if silent.Load() > 0 {
		fmt.Println("soak: FAIL — silent corruption detected")
		os.Exit(1)
	}
	fmt.Println("soak: PASS — every mismatch accounted for by a reported DUE/decommission")
}
