package cluster

import (
	"context"
	"time"
)

// Read reads n bytes at addr from the cluster.
func (c *Client) Read(addr uint64, n int) ([]byte, error) {
	return c.ReadCtx(context.Background(), addr, n)
}

// ReadCtx is the hedged, failover, retrying cluster read. One logical
// read makes up to len(endpoints) replica attempts per round (a hedge
// after the derived delay, an immediate failover after each failure)
// and up to MaxRetries backoff rounds when the failure is transient.
func (c *Client) ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.reads.Inc()
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, err := c.readRound(ctx, addr, n)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !isRetryable(err) || attempt >= c.cfg.MaxRetries {
			return nil, lastErr
		}
		pause := c.jitteredBackoff(attempt)
		// Retry only with headroom: sleeping into the caller's deadline
		// converts a replica hiccup into a caller timeout.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < 2*pause {
			return nil, lastErr
		}
		c.retries.Inc()
		select {
		case <-time.After(pause):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, ErrClosed
		}
	}
}

// readResult is one replica attempt's outcome.
type readResult struct {
	data    []byte
	err     error
	ep      *endpoint
	conn    Conn
	probe   bool
	latency time.Duration
	hedge   bool // launched by the hedge timer, not as primary/failover
}

// readRound runs one round of hedged/failover attempts across the
// currently fresh endpoints. It returns the first success, or the last
// error once every candidate has failed.
func (c *Client) readRound(ctx context.Context, addr uint64, n int) ([]byte, error) {
	type candidate struct {
		ep    *endpoint
		conn  Conn
		probe bool
	}
	var cands []candidate
	start := c.rr.Add(1)
	for i := 0; i < len(c.eps); i++ {
		ep := c.eps[(int(start)+i)%len(c.eps)]
		conn, fresh := ep.freshFor(addr)
		if !fresh {
			continue
		}
		ok, probe := ep.admit()
		if !ok {
			continue
		}
		cands = append(cands, candidate{ep, conn, probe})
	}
	if len(cands) == 0 {
		c.noReplicaErrors.Inc()
		return nil, ErrNoReplicas
	}

	// Losers must be released even after we return: attempts run under
	// actx so a winner cancels the stragglers, and every attempt settles
	// its own breaker bookkeeping in its goroutine.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan readResult, len(cands))
	launch := func(i int, hedge bool) {
		cd := cands[i]
		go func() {
			t0 := time.Now()
			data, err := cd.conn.ReadCtx(actx, addr, n)
			r := readResult{
				data: data, err: err, ep: cd.ep, conn: cd.conn,
				probe: cd.probe, latency: time.Since(t0), hedge: hedge,
			}
			switch {
			case err == nil:
				cd.ep.brk.Record(cd.probe, true)
			case ctxError(actx, err):
				// Our cancellation or the caller's deadline: no health
				// signal either way.
				cd.ep.brk.Release(cd.probe)
			default:
				cd.ep.brk.Record(cd.probe, false)
				if isTransportDead(err) {
					cd.ep.markDown(cd.conn)
				}
			}
			results <- r
		}()
	}

	launch(0, false)
	next := 1
	inflight := 1
	hedged := false
	var hedgeTimer <-chan time.Time
	if !c.cfg.DisableHedging && len(cands) > 1 {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeTimer = t.C
	}

	var lastErr error
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(cands) {
				c.hedges.Inc()
				hedged = true
				launch(next, true)
				next++
				inflight++
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				c.readLat.Observe(r.latency)
				if hedged {
					if r.hedge {
						c.hedgeWins.Inc()
					} else {
						c.hedgeWasted.Inc()
					}
				}
				return r.data, nil
			}
			lastErr = r.err
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Immediate failover: a failed attempt frees its slot for the
			// next fresh candidate without waiting for the hedge timer.
			if next < len(cands) {
				launch(next, false)
				next++
				inflight++
			} else if inflight == 0 {
				return nil, lastErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.done:
			return nil, ErrClosed
		}
	}
}
