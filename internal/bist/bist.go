// Package bist implements the built-in self-test and self-repair
// machinery the paper's recovery process plugs into (§4, refs
// [8,18,24]): march-test algorithms (MATS+, March X, March C-) over an
// abstract memory, fault classification, and a BISR flow that feeds
// detected faults into the redundancy allocator and re-verifies the
// repaired array.
package bist

import "fmt"

// Memory is the bit-addressable array under test.
type Memory interface {
	// Rows and Cols give the array dimensions.
	Rows() int
	Cols() int
	// ReadBit returns the stored bit at (row, col).
	ReadBit(row, col int) bool
	// WriteBit stores a bit at (row, col).
	WriteBit(row, col int, v bool)
}

// OpKind is a march-element operation type.
type OpKind uint8

const (
	// OpRead reads and compares against the expected value.
	OpRead OpKind = iota
	// OpWrite writes the value.
	OpWrite
)

// Op is one read-expect or write step of a march element.
type Op struct {
	Kind  OpKind
	Value bool
}

// R returns a read-expect op and W a write op; they keep march
// algorithm definitions close to the literature's r0/w1 notation.
func R(v bool) Op { return Op{Kind: OpRead, Value: v} }

// W returns a write op.
func W(v bool) Op { return Op{Kind: OpWrite, Value: v} }

// Order is the address sweep direction of an element.
type Order uint8

const (
	// Up sweeps addresses in ascending order.
	Up Order = iota
	// Down sweeps in descending order.
	Down
)

// Element is one march element: a sweep applying the op sequence at
// every cell.
type Element struct {
	Order Order
	Ops   []Op
}

// Algorithm is a named march test.
type Algorithm struct {
	Name     string
	Elements []Element
}

// MATSPlus returns MATS+ : {⇑(w0); ⇑(r0,w1); ⇓(r1,w0)} — detects all
// stuck-at faults with 5N operations.
func MATSPlus() Algorithm {
	return Algorithm{
		Name: "MATS+",
		Elements: []Element{
			{Up, []Op{W(false)}},
			{Up, []Op{R(false), W(true)}},
			{Down, []Op{R(true), W(false)}},
		},
	}
}

// MarchX returns March X: {⇑(w0); ⇑(r0,w1); ⇓(r1,w0); ⇑(r0)} — adds
// transition-fault coverage (6N).
func MarchX() Algorithm {
	return Algorithm{
		Name: "March X",
		Elements: []Element{
			{Up, []Op{W(false)}},
			{Up, []Op{R(false), W(true)}},
			{Down, []Op{R(true), W(false)}},
			{Up, []Op{R(false)}},
		},
	}
}

// MarchCMinus returns March C-:
// {⇑(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇑(r0)} — detects
// stuck-at, transition, and unlinked coupling faults (10N). This is
// the complexity class the paper equates the 2D recovery latency to.
func MarchCMinus() Algorithm {
	return Algorithm{
		Name: "March C-",
		Elements: []Element{
			{Up, []Op{W(false)}},
			{Up, []Op{R(false), W(true)}},
			{Up, []Op{R(true), W(false)}},
			{Down, []Op{R(false), W(true)}},
			{Down, []Op{R(true), W(false)}},
			{Up, []Op{R(false)}},
		},
	}
}

// Fail records one miscompare during a march run.
type Fail struct {
	// Row, Col locate the failing cell.
	Row, Col int
	// Element and OpIndex identify the march step that caught it.
	Element, OpIndex int
	// Expected is the value the read should have returned.
	Expected bool
}

// Result summarises a march run.
type Result struct {
	// Algorithm is the test that ran.
	Algorithm string
	// Operations counts individual reads+writes performed.
	Operations int
	// Fails lists every miscompare (a faulty cell can appear several
	// times across elements).
	Fails []Fail
}

// FailingCells returns the distinct failing cell coordinates.
func (r Result) FailingCells() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, f := range r.Fails {
		k := [2]int{f.Row, f.Col}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Passed reports a clean run.
func (r Result) Passed() bool { return len(r.Fails) == 0 }

// Run executes the algorithm over the memory, visiting cells in
// row-major address order (ascending or descending per element).
func Run(mem Memory, alg Algorithm) Result {
	res := Result{Algorithm: alg.Name}
	rows, cols := mem.Rows(), mem.Cols()
	n := rows * cols
	for ei, el := range alg.Elements {
		for i := 0; i < n; i++ {
			addr := i
			if el.Order == Down {
				addr = n - 1 - i
			}
			r, c := addr/cols, addr%cols
			for oi, op := range el.Ops {
				res.Operations++
				switch op.Kind {
				case OpRead:
					if mem.ReadBit(r, c) != op.Value {
						res.Fails = append(res.Fails, Fail{
							Row: r, Col: c, Element: ei, OpIndex: oi, Expected: op.Value,
						})
					}
				case OpWrite:
					mem.WriteBit(r, c, op.Value)
				default:
					panic(fmt.Sprintf("bist: unknown op kind %d", op.Kind))
				}
			}
		}
	}
	return res
}
