package twod

import (
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// smallEDCArray builds an 8-row array whose vertical interleave V=4
// puts rows 0 and 4 in the same parity group, so an ambiguous pair of
// flips (same word slot, codeword bits 0 and 8 — the same EDC8 parity
// group, hence the same syndrome column) is guaranteed beyond coverage.
func smallEDCArray(t testing.TB) *Array {
	t.Helper()
	return MustArray(Config{
		Rows: 8, WordsPerRow: 2,
		Horizontal:     ecc.MustEDC(64, 8),
		VerticalGroups: 4,
	})
}

func fillArray(a *Array, seed uint64) {
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < a.Config().WordsPerRow; w++ {
			a.Write(r, w, bitvec.FromUint64(seed+uint64(r*13+w*7), 64))
		}
	}
}

// injectBeyondCoverage plants the ambiguous two-row error: both flips
// land in word slot 0 at codeword bits 0 and 8, which share an EDC8
// parity column, in two rows of the same vertical group.
func injectBeyondCoverage(a *Array) {
	wpr := a.Config().WordsPerRow
	a.FlipBit(0, a.Layout().PhysColumn(0, 0)) // row 0, word 0, bit 0
	a.FlipBit(4, 8*wpr)                       // row 4, word 0, bit 8
}

func TestRecoverIdempotentAfterSuccess(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x1111)
	a.FlipBit(2, 5)
	first := a.Recover()
	if !first.Success || first.BitsFlipped == 0 {
		t.Fatalf("first recovery: %+v", first)
	}
	second := a.Recover()
	if !second.Success || second.Mode != RecoveryNone || second.BitsFlipped != 0 {
		t.Fatalf("second recovery not a clean no-op: %+v", second)
	}
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("array not clean after double recovery: %+v", rep)
	}
}

func TestRecoverIdempotentAfterFailure(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x2222)
	injectBeyondCoverage(a)

	first := a.Recover()
	if first.Success || first.Mode != RecoveryFailed {
		t.Fatalf("expected failure, got %+v", first)
	}
	snap := a.SnapshotData()

	// Re-entering recovery on the same damage must neither oscillate nor
	// corrupt further: same verdict, no data mutation.
	second := a.Recover()
	if second.Success || second.Mode != RecoveryFailed {
		t.Fatalf("second recovery changed verdict: %+v", second)
	}
	if !a.SnapshotData().Equal(snap) {
		t.Fatal("failed recovery mutated data on re-entry")
	}
}

func TestPartialFailureLeavesParitySelfConsistent(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x3333)
	injectBeyondCoverage(a)
	// A third, uniquely-solvable error rides along in another group so
	// the recovery is genuinely *partial*: that word gets fixed, the
	// ambiguous pair does not.
	wpr := a.Config().WordsPerRow
	a.FlipBit(1, 3*wpr+1) // row 1 (group 1), word 1, bit 3

	rep := a.Recover()
	if rep.Success || rep.Mode != RecoveryFailed {
		t.Fatalf("expected partial failure, got %+v", rep)
	}
	if rep.BitsFlipped == 0 {
		t.Fatalf("expected the solvable word to be repaired: %+v", rep)
	}

	// Self-consistent, not stale: the parity still reflects *intended*
	// contents, so the residual mismatch pinpoints exactly the surviving
	// damage (the ambiguous pair in group 0) — the solvable word's group
	// must check clean again.
	audit := a.VerifyIntegrity()
	if audit.FaultyWords != 2 {
		t.Fatalf("residual faulty words = %d, want 2 (the ambiguous pair): %+v", audit.FaultyWords, audit)
	}
	if audit.ParityMismatches != 1 {
		t.Fatalf("parity mismatches = %d, want exactly the damaged group", audit.ParityMismatches)
	}

	// The prescribed machine-check reload: ForceWrite of the affected
	// words, then a residue flush once the group checks clean. The
	// raw-delta ForceWrite deliberately keeps the pair's error pattern
	// in the group mismatch (instead of a rebuild erasing every other
	// row's recovery information); the flush retires it safely because
	// the group is clean by then.
	a.ForceWrite(0, 0, bitvec.FromUint64(0x3333+0, 64))
	a.ForceWrite(4, 0, bitvec.FromUint64(0x3333+4*13, 64))
	if n := a.FlushResidualParity(); n != 1 {
		t.Fatalf("flushed %d residual groups, want 1 (the pair's group)", n)
	}
	if audit := a.VerifyIntegrity(); !audit.Clean() {
		t.Fatalf("array not clean after reload: %+v", audit)
	}
}

func TestTryReadDoesNotMutate(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x4444)
	if _, ok := a.TryRead(3, 1); !ok {
		t.Fatal("clean word rejected")
	}
	a.FlipBit(3, 7)
	recBefore := a.Stats().Recoveries
	if _, ok := a.TryRead(3, 1); ok {
		t.Fatal("dirty word accepted")
	}
	if a.Stats().Recoveries != recBefore {
		t.Fatal("TryRead triggered recovery")
	}
	// The damage is still there for the exclusive path to repair.
	if _, st := a.Read(3, 1); st != ReadRecovered {
		t.Fatalf("exclusive read status %v", st)
	}
}

func TestCorrectWordRungSemantics(t *testing.T) {
	// SECDED horizontal: a single-bit error is repairable word-locally,
	// without the array-wide recovery march.
	s := MustArray(Config{
		Rows: 8, WordsPerRow: 2,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 4,
	})
	fillArray(s, 0x5555)
	s.FlipBit(2, 0)
	recBefore := s.Stats().Recoveries
	if !s.CorrectWord(2, 0) {
		t.Fatal("SECDED word-level correction failed")
	}
	if s.Stats().Recoveries != recBefore {
		t.Fatal("CorrectWord escalated to full recovery")
	}
	if _, ok := s.TryRead(2, 0); !ok {
		t.Fatal("word still dirty after CorrectWord")
	}
	if rep := s.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("parity disturbed by CorrectWord: %+v", rep)
	}

	// EDC horizontal: detection-only, the rung must report failure.
	e := smallEDCArray(t)
	fillArray(e, 0x6666)
	e.FlipBit(2, 0)
	if e.CorrectWord(2, 0) {
		t.Fatal("EDC claimed a word-level correction")
	}
}

func TestFaultyWordList(t *testing.T) {
	a := smallEDCArray(t)
	fillArray(a, 0x7777)
	if got := a.FaultyWordList(); len(got) != 0 {
		t.Fatalf("clean array lists faults: %v", got)
	}
	injectBeyondCoverage(a)
	a.Recover() // fails, residue remains
	got := a.FaultyWordList()
	want := map[[2]int]bool{{0, 0}: true, {4, 0}: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("faulty word list %v, want rows 0 and 4 word 0", got)
	}
}
