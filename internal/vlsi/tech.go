// Package vlsi provides an analytical SRAM area/delay/energy model in
// the spirit of Cacti 4.0 (the paper's modelling tool), including the
// design-space exploration over sub-array partitioning and the cost of
// physical bit interleaving and EDC/ECC coding logic. The paper used a
// modified Cacti 4.0 at 70 nm; this package substitutes a simplified but
// structurally faithful model: absolute numbers are approximate, the
// *relative* overheads (the quantities the paper reports) track the
// same mechanisms — pseudo-read bitline energy growing with interleave
// degree, bitline segmentation as the power lever, check-bit storage
// and syndrome-logic costs growing with code strength.
package vlsi

// Tech bundles the process-dependent constants. Values approximate a
// 70 nm node; they are exposed so studies can re-derive results under
// different assumptions.
type Tech struct {
	// CellW and CellH are the SRAM cell dimensions in micrometres.
	CellW, CellH float64
	// CellArea is the 6T cell area in um^2 (kept separate from W*H to
	// allow non-rectangular accounting).
	CellArea float64
	// CBitlinePerCell is the bitline capacitance contributed by one
	// cell, in femtofarads.
	CBitlinePerCell float64
	// CWordlinePerCell is the wordline capacitance per cell, in fF.
	CWordlinePerCell float64
	// CWirePerUM is routing capacitance per micrometre, in fF.
	CWirePerUM float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// VSwing is the read bitline swing in volts.
	VSwing float64
	// ESenseAmp is the per-sense-amp energy per access, in fJ.
	ESenseAmp float64
	// EXorGate is the energy of one 2-input XOR evaluation, in fJ.
	EXorGate float64
	// EMuxPerCol is the column-mux and pseudo-read I/O energy per
	// interleaved column delivered to the mux, in fJ. This term scales
	// with Interleave*AccessBits no matter how the array is organised —
	// the unavoidable cost of bit interleaving (§2.2).
	EMuxPerCol float64
	// EDecodePerBit is decoder energy per address bit, in fJ.
	EDecodePerBit float64
	// TGate is one logic gate delay (FO4-ish), in nanoseconds.
	TGate float64
	// TSenseAmp is the sense amplifier resolution time, in ns.
	TSenseAmp float64
	// TBitlinePerRow is bitline discharge time per row of load, in ns.
	TBitlinePerRow float64
	// TWordlinePerMM2 scales the quadratic (RC) wordline delay, ns/mm^2.
	TWordlinePerMM2 float64
	// SubarrayOverheadH is the height of a sense-amp/precharge strip in
	// cell-heights, charged once per bitline division.
	SubarrayOverheadH float64
	// SubarrayOverheadW is the width of a row-decoder strip in
	// cell-widths, charged once per wordline division.
	SubarrayOverheadW float64
	// PortAreaFactor is the per-extra-port multiplier on cell area.
	PortAreaFactor float64
}

// Default70nm returns the constants used for all paper-reproduction
// studies.
func Default70nm() Tech {
	return Tech{
		CellW:             1.1,
		CellH:             0.9,
		CellArea:          1.0,
		CBitlinePerCell:   1.80,
		CWordlinePerCell:  1.20,
		CWirePerUM:        0.20,
		Vdd:               1.0,
		VSwing:            0.20,
		ESenseAmp:         2.0,
		EXorGate:          0.18,
		EMuxPerCol:        0.9,
		EDecodePerBit:     12.0,
		TGate:             0.018,
		TSenseAmp:         0.12,
		TBitlinePerRow:    0.0022,
		TWordlinePerMM2:   0.45,
		SubarrayOverheadH: 6.0,
		SubarrayOverheadW: 10.0,
		PortAreaFactor:    0.65,
	}
}
