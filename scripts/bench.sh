#!/bin/sh
# bench.sh — the data-path benchmark suite, benchstat-compatible.
#
#   ./scripts/bench.sh                  # headline data-path benches, 5 runs
#   ./scripts/bench.sh -kernels         # per-code kernel micro-benches only
#   ./scripts/bench.sh -all             # every benchmark (incl. figure regen)
#   COUNT=10 ./scripts/bench.sh         # override run count
#
# Always passes -benchmem so allocation regressions show up next to the
# timing. Pipe two runs through benchstat to compare; the committed
# baseline lives in results/BENCH_kernels.md.
set -eu
cd "$(dirname "$0")/.."

count=${COUNT:-5}
pattern='BenchmarkArrayWrite$|BenchmarkArrayReadClean$|BenchmarkEDC8Syndrome$|BenchmarkSECDEDDecode$|BenchmarkPCacheParallelRead$|BenchmarkPCacheParallelReadInto$|BenchmarkKernel'
case "${1:-}" in
-kernels)
    pattern='BenchmarkKernel'
    ;;
-all)
    pattern='.'
    ;;
esac

exec go test -run '^$' -bench "$pattern" -benchmem -count "$count" .
