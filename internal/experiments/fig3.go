package experiments

import (
	"fmt"
	"math/rand"

	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

// fig3Schemes builds the three protection schemes of Fig. 3 over the
// paper's 8 kB (256x256-bit data) example array.
func fig3Schemes() []fault.Scheme {
	oec, err := ecc.NewOECNED(64)
	if err != nil {
		panic(err)
	}
	return []fault.Scheme{
		fault.ConventionalScheme{
			Label: "SECDED+Intv4",
			Rows:  256, WordsPerRow: 4, Code: ecc.MustSECDED(64),
		},
		fault.ConventionalScheme{
			Label: "OECNED+Intv4",
			Rows:  256, WordsPerRow: 4, Code: oec,
		},
		fault.TwoDScheme{
			Label: "2D(EDC8+Intv4,EDC32)",
			Cfg: twod.Config{
				Rows: 256, WordsPerRow: 4,
				Horizontal:     ecc.MustEDC(64, 8),
				VerticalGroups: 32,
			},
		},
	}
}

// Fig3 reproduces Fig. 3 by *measurement* rather than by argument: each
// scheme's storage overhead is computed and its correction coverage is
// measured by injecting solid clustered errors of every footprint in
// {1,2,4,8,16,32} x {1,2,4,8,16,32} bits at random positions. The
// paper's claims: SECDED+Intv4 covers 4-bit-wide single-row clusters
// (12.5% storage), OECNED+Intv4 covers 32-bit-wide single-row clusters
// (89.1%), and 2D coding covers the full 32x32 box (~25%).
func Fig3(opt Options) Table {
	t := Table{
		ID:     "fig3",
		Title:  "Fig. 3: measured coverage and storage overhead, 8kB array",
		Header: []string{"scheme", "storage", "max solid cluster corrected (HxW)", "1x4", "1x32", "32x32", "row failure"},
	}
	sizes := []int{1, 2, 4, 8, 16, 32}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, s := range fig3Schemes() {
		cells := fault.CoverageMatrix(s, rng, sizes, sizes, opt.Trials)
		rate := map[[2]int]float64{}
		maxH, maxW := 0, 0
		for _, c := range cells {
			rate[[2]int{c.H, c.W}] = c.Rate()
		}
		// Largest square-ish footprint with full coverage.
		for _, h := range sizes {
			for _, w := range sizes {
				if rate[[2]int{h, w}] == 1.0 && h*w > maxH*maxW {
					maxH, maxW = h, w
				}
			}
		}
		cell := func(h, w int) string { return pct(rate[[2]int{h, w}]) }
		t.Rows = append(t.Rows, []string{
			s.Name(),
			pct(s.StorageOverhead()),
			fmt.Sprintf("%dx%d", maxH, maxW),
			cell(1, 4), cell(1, 32), cell(32, 32),
			pct(rowFailureRate(s, rng, opt.Trials)),
		})
	}
	t.Notes = append(t.Notes,
		"row failure = every bit of one physical row flipped; only the vertical code reconstructs it",
		"coverage measured by injection (trials per footprint: "+itoa(opt.Trials)+")",
		"paper overheads: SECDED+Intv4 12.5%, OECNED+Intv4 89.1%, 2D 25%")
	return t
}

// rowFailureRate measures correction of a whole-row failure.
func rowFailureRate(s fault.Scheme, rng *rand.Rand, trials int) float64 {
	ok := 0
	for i := 0; i < trials; i++ {
		inst := s.New(rng)
		tg := inst.Target()
		fault.Apply(tg, fault.RowFailure(rng.Intn(tg.Rows()), tg.RowBits()))
		if inst.Repair() {
			ok++
		}
	}
	if trials == 0 {
		return 0
	}
	return float64(ok) / float64(trials)
}
