package workload

import (
	"math"
	"testing"
)

func TestProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 6 {
		t.Fatalf("profiles = %d, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"OLTP", "DSS", "Web", "Moldyn", "Ocean", "Sparse"} {
		if !names[want] {
			t.Errorf("missing paper workload %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("OLTP")
	if err != nil || p.Name != "OLTP" {
		t.Fatalf("ByName: %v %v", p, err)
	}
	if _, err := ByName("TPC-E"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestValidateRejectsBadFractions(t *testing.T) {
	p, _ := ByName("OLTP")
	p.MemFrac = 1.5
	if p.Validate() == nil {
		t.Fatal("MemFrac > 1 accepted")
	}
	p, _ = ByName("OLTP")
	p.HotLines = 0
	if p.Validate() == nil {
		t.Fatal("zero hot set accepted")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p, _ := ByName("Web")
	a := MustStream(p, 1, 0, 42)
	b := MustStream(p, 1, 0, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different traces")
		}
	}
	c := MustStream(p, 1, 0, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("different seeds produced near-identical traces")
	}
}

func TestStreamStatisticsMatchProfile(t *testing.T) {
	for _, p := range Profiles() {
		s := MustStream(p, 0, 0, 7)
		const n = 200000
		mem, writes := 0, 0
		for i := 0; i < n; i++ {
			in := s.Next()
			if in.IsMem {
				mem++
				if in.IsWrite {
					writes++
				}
			}
		}
		gotMem := float64(mem) / n
		if math.Abs(gotMem-p.MemFrac) > 0.01 {
			t.Errorf("%s: mem frac %v, want %v", p.Name, gotMem, p.MemFrac)
		}
		gotWr := float64(writes) / float64(mem)
		if math.Abs(gotWr-p.WriteFrac) > 0.02 {
			t.Errorf("%s: write frac %v, want %v", p.Name, gotWr, p.WriteFrac)
		}
	}
}

func TestStreamsAreDisjointAcrossThreads(t *testing.T) {
	p, _ := ByName("Moldyn")
	p.SharedFrac = 0 // private accesses only
	a := MustStream(p, 0, 0, 1)
	b := MustStream(p, 0, 1, 1)
	seenA := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		if in := a.Next(); in.IsMem {
			seenA[in.Addr>>6] = true
		}
	}
	for i := 0; i < 20000; i++ {
		if in := b.Next(); in.IsMem {
			if seenA[in.Addr>>6] {
				t.Fatal("private regions overlap across threads")
			}
		}
	}
}

func TestSharedRegionIsShared(t *testing.T) {
	p, _ := ByName("OLTP")
	a := MustStream(p, 0, 0, 1)
	b := MustStream(p, 3, 0, 1)
	seenA := map[uint64]bool{}
	const n = 100000
	for i := 0; i < n; i++ {
		if in := a.Next(); in.IsMem && in.Addr >= sharedBase && in.Addr < sharedBase+uint64(p.SharedLines)*64 {
			seenA[in.Addr>>6] = true
		}
	}
	overlap := 0
	for i := 0; i < n; i++ {
		if in := b.Next(); in.IsMem && seenA[in.Addr>>6] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("no cross-core overlap in shared region")
	}
}

func TestIFetch(t *testing.T) {
	p, _ := ByName("OLTP")
	s := MustStream(p, 0, 0, 5)
	misses := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.IFetchMiss() {
			misses++
			if a := s.IFetchAddr(); a == 0 {
				t.Fatal("zero ifetch address")
			}
		}
	}
	got := float64(misses) / n
	if math.Abs(got-p.IFetchMissRate) > 0.004 {
		t.Fatalf("ifetch miss rate %v, want %v", got, p.IFetchMissRate)
	}
}
