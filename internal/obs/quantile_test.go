package obs

import (
	"testing"
	"time"
)

// TestQuantileTable pins the interpolation arithmetic bucket by bucket:
// containing-bucket selection, the rank floor at 1 (so q→0 reports the
// smallest observation's bucket, never an earlier empty one), overflow
// containment, and exact interpolated values.
func TestQuantileTable(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	bounds := []time.Duration{ms(1), ms(2), ms(4), ms(8)}

	cases := []struct {
		name   string
		counts []uint64 // len(bounds)+1; last is the overflow bucket
		q      float64
		want   time.Duration
	}{
		{
			// 10 observations in (1ms,2ms]. q=0.5 → rank 5, frac 0.5:
			// halfway through the bucket.
			name:   "interpolate-mid-bucket",
			counts: []uint64{0, 10, 0, 0, 0},
			q:      0.5, want: ms(1) + ms(1)/2,
		},
		{
			// q=1 → rank 10, frac 1: the bucket's upper bound exactly.
			name:   "q1-upper-bound",
			counts: []uint64{0, 10, 0, 0, 0},
			q:      1, want: ms(2),
		},
		{
			// The off-by-one-bucket case the rank floor fixes: every
			// observation lives in (2ms,4ms], yet q=0 used to answer
			// Bounds[0]=1ms — a bucket nothing landed in. Rank 1 of 10
			// interpolates a tenth into the populated bucket.
			name:   "q0-skips-empty-buckets",
			counts: []uint64{0, 0, 10, 0, 0},
			q:      0, want: ms(2) + (ms(4)-ms(2))/10,
		},
		{
			// Same floor via a tiny q: rank 0.1 floors to 1.
			name:   "tiny-q-floors-to-rank-1",
			counts: []uint64{0, 0, 10, 0, 0},
			q:      0.01, want: ms(2) + (ms(4)-ms(2))/10,
		},
		{
			// Rank lands on the exact boundary between buckets: cum+c ==
			// rank selects the earlier bucket and frac 1 answers its
			// upper bound — not the start of the next.
			name:   "rank-on-bucket-boundary",
			counts: []uint64{5, 5, 0, 0, 0},
			q:      0.5, want: ms(1),
		},
		{
			// Rank one past the boundary: first observation of bucket 1.
			name:   "rank-just-past-boundary",
			counts: []uint64{5, 5, 0, 0, 0},
			q:      0.6, want: ms(1) + (ms(2)-ms(1))/5,
		},
		{
			// Overflow containment: half the mass beyond the last finite
			// bound. q=0.9 ranks into the overflow bucket, which the
			// histogram cannot resolve — the largest finite bound is the
			// honest answer.
			name:   "overflow-reports-last-bound",
			counts: []uint64{5, 0, 0, 0, 5},
			q:      0.9, want: ms(8),
		},
		{
			// All mass in overflow: every quantile saturates.
			name:   "all-overflow",
			counts: []uint64{0, 0, 0, 0, 7},
			q:      0.01, want: ms(8),
		},
		{
			// First bucket populated: rank 1 of 4, a quarter in. lo is 0
			// for bucket 0.
			name:   "first-bucket-interpolates-from-zero",
			counts: []uint64{4, 0, 0, 0, 0},
			q:      0, want: ms(1) / 4,
		},
		{
			// q clamps: below 0 behaves like 0, above 1 like 1.
			name:   "q-clamps-low",
			counts: []uint64{4, 0, 0, 0, 0},
			q:      -3, want: ms(1) / 4,
		},
		{
			name:   "q-clamps-high",
			counts: []uint64{4, 0, 0, 0, 0},
			q:      7, want: ms(1),
		},
		{
			// A hole between populated buckets is skipped, not reported:
			// rank 6 of 10 passes bucket 0 (5), skips empty buckets, and
			// lands in (4ms,8ms].
			name:   "hole-between-buckets",
			counts: []uint64{5, 0, 0, 5, 0},
			q:      0.6, want: ms(4) + (ms(8)-ms(4))/5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var count uint64
			for _, c := range tc.counts {
				count += c
			}
			s := HistogramSnapshot{Bounds: bounds, Counts: tc.counts, Count: count}
			if got := s.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}

	empty := HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, 5)}
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

// TestHistogramSnapshotMethod pins the exported Histogram.Snapshot: the
// same coherent view Registry.Snapshot exports, available to holders of
// the bare histogram.
func TestHistogramSnapshotMethod(t *testing.T) {
	h := MustHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Minute) // overflow

	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("Σ Counts = %d != Count %d", sum, s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("Counts = %v, want [1 1 1]", s.Counts)
	}
	want := 500*time.Microsecond + 5*time.Millisecond + time.Minute
	if s.Sum != want {
		t.Fatalf("Sum = %v, want %v", s.Sum, want)
	}

	// Registry.Snapshot must agree with the direct method.
	r := NewRegistry()
	r.AttachHistogram("lat", "test", h)
	rs := r.Snapshot().Histogram("lat")
	if rs.Count != s.Count || rs.Sum != s.Sum {
		t.Fatalf("registry view (%d, %v) != direct view (%d, %v)",
			rs.Count, rs.Sum, s.Count, s.Sum)
	}
}
