package bch

import (
	"math/rand"
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/gf2"
)

// TestDecodeNeverPanicsAnyWeight drives the decoder with error weights
// far beyond the design distance: a bounded-distance decoder may
// miscorrect there, but it must never panic, loop, or corrupt the
// codeword length, and weights within the guarantee must behave per
// contract.
func TestDecodeNeverPanicsAnyWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range []struct{ k, t int }{{64, 1}, {64, 2}, {64, 4}, {64, 8}, {256, 2}} {
		c, err := New(tc.k, tc.t)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			data := randVec(rng, tc.k)
			cw := c.Encode(data)
			weight := rng.Intn(2*tc.t + 5)
			flipRandom(rng, cw, weight)
			res, n := c.Decode(cw)
			if cw.Len() != c.N() {
				t.Fatalf("codeword length mutated to %d", cw.Len())
			}
			switch {
			case weight == 0:
				if res != Clean {
					t.Fatalf("k=%d t=%d w=0: %v", tc.k, tc.t, res)
				}
			case weight <= tc.t:
				if res != Corrected || !c.Data(cw).Equal(data) {
					t.Fatalf("k=%d t=%d w=%d: %v/%d", tc.k, tc.t, weight, res, n)
				}
			case weight == tc.t+1:
				if res != Detected {
					t.Fatalf("k=%d t=%d w=t+1: %v (guarantee violated)", tc.k, tc.t, res)
				}
			default:
				// Beyond the design distance: Detected or a (legal)
				// miscorrection; either way n <= t+1 bits were flipped.
				if res == Corrected && n > tc.t+1 {
					t.Fatalf("claimed to correct %d > t+1 bits", n)
				}
			}
		}
	}
}

// TestDecodeIsIdempotent: decoding a decoded word reports Clean.
func TestDecodeIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := New(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		cw := c.Encode(randVec(rng, 64))
		flipRandom(rng, cw, 1+rng.Intn(4))
		if res, _ := c.Decode(cw); res != Corrected {
			t.Fatal("setup decode failed")
		}
		if res, _ := c.Decode(cw); res != Clean {
			t.Fatalf("second decode: %v", res)
		}
	}
}

// TestGeneratorDividesCodewords: every encoded word, as a polynomial,
// is divisible by the generator — the defining algebraic property.
func TestGeneratorDividesCodewords(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, err := NewPlain(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		cw := c.Encode(randVec(rng, 32))
		// Build the codeword polynomial.
		poly := polyFromVec(cw)
		if !poly.Mod(c.Generator()).IsZero() {
			t.Fatal("codeword not divisible by generator")
		}
	}
}

// polyFromVec converts a codeword bit vector to a GF(2) polynomial.
func polyFromVec(v *bitvec.Vector) gf2.Poly {
	p := gf2.Poly{}
	for _, i := range v.Ones() {
		p = p.Add(gf2.PolyX(i))
	}
	return p
}
