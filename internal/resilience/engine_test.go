package resilience

import (
	"errors"
	"testing"
	"time"

	"twodcache/internal/pcache"
)

func newEngine(t *testing.T, ccfg pcache.Config, ecfg Config) (*Engine, *pcache.MapBacking) {
	t.Helper()
	back := pcache.NewMapBacking(ccfg.LineBytes)
	c, err := pcache.New(ccfg, back)
	if err != nil {
		t.Fatal(err)
	}
	return New(c, ecfg), back
}

// plantBeyondCoverage writes and flushes two lines, then plants the
// guaranteed-ambiguous error across their data rows: in a 64-row,
// V=32 array, rows 0 (set 0 way 0) and 32 (set 16 way 0) share a
// vertical group, and codeword bits 0 and 8 share an EDC8 parity
// column, so recovery fails deterministically.
func plantBeyondCoverage(t *testing.T, e *Engine) {
	t.Helper()
	c := e.Cache()
	if err := c.Write(0, []byte{0x11}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(16*64, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))
}

var bigCfg = pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 1}

func due(set, way int) *pcache.UncorrectableError {
	return &pcache.UncorrectableError{Array: pcache.ArrayData, Set: set, Way: way}
}

func TestRungRetry(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	// The damage "vanished" before the retry (a concurrent repair):
	// rung 1 alone must rescue the access.
	if err := e.ladder(due(0, 0), func() error { return nil }); err != nil {
		t.Fatalf("ladder: %v", err)
	}
	r := e.Report()
	if r.DUEs != 1 || r.Retries != 1 || r.RetrySuccesses != 1 {
		t.Fatalf("retry rung counters wrong: %+v", r)
	}
	if r.WordAttempts != 0 || r.FullAttempts != 0 || r.Decommissions != 0 {
		t.Fatalf("retry success escalated anyway: %+v", r)
	}
}

func TestRungWordRecovery(t *testing.T) {
	cfg := bigCfg
	cfg.SECDEDHorizontal = true
	e, _ := newEngine(t, cfg, Config{})
	c := e.Cache()
	if err := c.Write(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	da.FlipBit(0, 0)

	// The attempt fails while set 0's line words are dirty: only the
	// word rung (SECDED correction in place) can clear it.
	dirty := func() bool {
		for w := 0; w < 64/8; w++ {
			if _, ok := da.TryRead(0, w); !ok {
				return true
			}
		}
		return false
	}
	err := e.ladder(due(0, 0), func() error {
		if dirty() {
			return due(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	r := e.Report()
	if r.WordAttempts != 1 || r.WordRecoveries != 1 {
		t.Fatalf("word rung counters wrong: %+v", r)
	}
	if r.RetrySuccesses != 0 || r.FullAttempts != 0 || r.Decommissions != 0 {
		t.Fatalf("wrong rung rescued the access: %+v", r)
	}
	if dirty() {
		t.Fatal("word rung did not actually repair the cells")
	}
}

func TestRungFull2D(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{}) // EDC: word rung cannot correct
	c := e.Cache()
	if err := c.Write(0, []byte{0xCD}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	da.FlipBit(0, 0)

	dirty := func() bool {
		_, ok := da.TryRead(0, 0)
		return !ok
	}
	err := e.ladder(due(0, 0), func() error {
		if dirty() {
			return due(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	r := e.Report()
	if r.WordAttempts != 1 || r.WordRecoveries != 0 {
		t.Fatalf("EDC word rung should attempt and fail: %+v", r)
	}
	if r.FullAttempts != 1 || r.FullRecoveries != 1 {
		t.Fatalf("full-2D rung counters wrong: %+v", r)
	}
	if r.Decommissions != 0 {
		t.Fatalf("recoverable fault degraded the cache: %+v", r)
	}
}

func TestRungDegradeEndToEnd(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	plantBeyondCoverage(t, e)

	// The engine's Read must survive the RecoveryFailed path: refetch
	// from backing after decommissioning the broken way.
	got, err := e.Read(0, 1)
	if err != nil || got[0] != 0x11 {
		t.Fatalf("read through degrade: %v %v", got, err)
	}
	r := e.Report()
	if r.DUEs == 0 || r.Decommissions == 0 {
		t.Fatalf("degrade rung never ran: %+v", r)
	}
	if r.Exhausted != 0 {
		t.Fatalf("ladder exhausted: %+v", r)
	}

	// The partner half of the ambiguous pair degrades the same way.
	got, err = e.Read(16*64, 1)
	if err != nil || got[0] != 0x22 {
		t.Fatalf("partner set: %v %v", got, err)
	}

	// RecoveryFailed ended in a usable, smaller cache — not an error
	// loop: the whole address space still serves correctly.
	for l := uint64(0); l < 64; l++ {
		if err := e.Write(l*64, []byte{byte(l + 1)}); err != nil {
			t.Fatalf("line %d write: %v", l, err)
		}
	}
	for l := uint64(0); l < 64; l++ {
		got, err := e.Read(l*64, 1)
		if err != nil || got[0] != byte(l+1) {
			t.Fatalf("line %d read: %v %v", l, got, err)
		}
	}
	r = e.Report()
	if r.DisabledWays == 0 || r.CapacityLostPct <= 0 {
		t.Fatalf("no capacity accounted as lost: %+v", r)
	}
}

func TestRungDegradeRemapsToSpare(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{SpareRows: 4})
	plantBeyondCoverage(t, e)

	if got, err := e.Read(0, 1); err != nil || got[0] != 0x11 {
		t.Fatalf("read: %v %v", got, err)
	}
	if got, err := e.Read(16*64, 1); err != nil || got[0] != 0x22 {
		t.Fatalf("read: %v %v", got, err)
	}
	r := e.Report()
	if r.Remaps == 0 {
		t.Fatalf("spare budget unused: %+v", r)
	}
	if r.DisabledWays != 0 {
		t.Fatalf("remapped ways still disabled: %+v", r)
	}

	// A second failure of a remapped way means its spare is bad too:
	// it must stay retired this time.
	remapsBefore := e.Report().Remaps
	e.Degrade(0, 0)
	r = e.Report()
	if r.Remaps != remapsBefore {
		t.Fatalf("way remapped twice: %+v", r)
	}
	if r.DisabledWays != 1 {
		t.Fatalf("twice-failed way not retired: %+v", r)
	}
}

func TestRemapBudgetExhausts(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{SpareRows: 2})
	for i := 0; i < 4; i++ {
		e.Degrade(i, 0)
	}
	r := e.Report()
	if r.Remaps != 2 {
		t.Fatalf("remaps = %d, want exactly the spare budget 2", r.Remaps)
	}
	if r.DisabledWays != 2 {
		t.Fatalf("disabled = %d, want the 2 beyond-budget ways", r.DisabledWays)
	}
}

func TestLadderPassesThroughNonDUE(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	if _, err := e.Read(0, 0); err == nil {
		t.Fatal("zero-length read accepted")
	} else if errors.Is(err, pcache.ErrUncorrectable) {
		t.Fatalf("span error misclassified: %v", err)
	}
	if r := e.Report(); r.DUEs != 0 {
		t.Fatalf("non-DUE error entered the ladder: %+v", r)
	}
}

func TestMTTRAccounting(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(5 * time.Millisecond)
		return now
	}
	e, _ := newEngine(t, bigCfg, Config{Clock: clock})
	if err := e.ladder(due(0, 0), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := e.Report().MTTR; got != 5*time.Millisecond {
		t.Fatalf("MTTR = %v, want 5ms (one clock step per ladder run)", got)
	}
}

func TestDegradeCountsLostDirtyData(t *testing.T) {
	e, _ := newEngine(t, bigCfg, Config{})
	if err := e.Write(0, []byte{0xEE}); err != nil { // dirty, unflushed
		t.Fatal(err)
	}
	lost := e.Degrade(0, 0) || e.Degrade(0, 1) // one of the two ways holds it
	if !lost {
		t.Fatal("lost dirty line not reported")
	}
	if r := e.Report(); r.DirtyLinesLost != 1 {
		t.Fatalf("report %+v", r)
	}
}
