package ecc

import (
	"math/rand"
	"testing"
)

func TestBCHCodeWrappers(t *testing.T) {
	cases := []struct {
		make func(int) (Code, error)
		name string
		t    int
	}{
		{NewDECTED, "DECTED", 2},
		{NewQECPED, "QECPED", 4},
		{NewOECNED, "OECNED", 8},
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range cases {
		c, err := tc.make(64)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if c.Name() != tc.name || c.CorrectCapability() != tc.t || c.DetectCapability() != tc.t+1 {
			t.Fatalf("%s: bad metadata %s/%d/%d", tc.name, c.Name(), c.CorrectCapability(), c.DetectCapability())
		}
		for trial := 0; trial < 15; trial++ {
			d := randVec(rng, 64)
			cw := c.Encode(d)
			if cw.Len() != CodewordBits(c) {
				t.Fatalf("%s: codeword length %d", tc.name, cw.Len())
			}
			if !c.Data(cw).Equal(d) {
				t.Fatalf("%s: not systematic", tc.name)
			}
			// Inject exactly t errors in random positions.
			for _, p := range rng.Perm(cw.Len())[:tc.t] {
				cw.Flip(p)
			}
			res, n := c.Decode(cw)
			if res != Corrected || n != tc.t {
				t.Fatalf("%s: decode %v/%d, want corrected/%d", tc.name, res, n, tc.t)
			}
			if !c.Data(cw).Equal(d) {
				t.Fatalf("%s: data not restored", tc.name)
			}
		}
	}
}

func TestBCHWrapperDetectsTPlusOne(t *testing.T) {
	c, err := NewDECTED(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		cw := c.Encode(randVec(rng, 64))
		before := cw.Clone()
		for _, p := range rng.Perm(cw.Len())[:3] {
			cw.Flip(p)
		}
		res, _ := c.Decode(cw)
		if res != Detected {
			t.Fatalf("3 errors on DECTED: %v", res)
		}
		// Word should differ from clean in exactly the 3 flips (untouched).
		diff := 0
		for i := 0; i < cw.Len(); i++ {
			if cw.Bit(i) != before.Bit(i) {
				diff++
			}
		}
		if diff != 3 {
			t.Fatalf("Detected decode mutated codeword: %d diffs", diff)
		}
	}
}

func TestStorageOverheadHelper(t *testing.T) {
	e := MustEDC(64, 8)
	if StorageOverhead(e) != 0.125 {
		t.Fatalf("overhead = %v", StorageOverhead(e))
	}
}
