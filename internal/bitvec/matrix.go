package bitvec

import "fmt"

// Matrix is a rectangular grid of bits, stored row-major as a slice of
// Vectors. It models a physical SRAM sub-array: Rows() is the wordline
// dimension and Cols() the bitline dimension.
type Matrix struct {
	rows, cols int
	data       []*Vector
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitvec: negative matrix dimensions %dx%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]*Vector, rows)}
	for i := range m.data {
		m.data[i] = New(cols)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Bit reports whether the bit at (r, c) is set.
func (m *Matrix) Bit(r, c int) bool { return m.row(r).Bit(c) }

// Set sets the bit at (r, c).
func (m *Matrix) Set(r, c int, val bool) { m.row(r).Set(c, val) }

// Flip inverts the bit at (r, c).
func (m *Matrix) Flip(r, c int) { m.row(r).Flip(c) }

// Row returns the Vector backing row r. Mutating it mutates the matrix.
func (m *Matrix) Row(r int) *Vector { return m.row(r) }

// RowWords returns row r's backing words for allocation-free kernel
// access. Mutating them mutates the matrix; bits >= Cols in the last
// word must stay zero.
func (m *Matrix) RowWords(r int) []uint64 { return m.row(r).words }

func (m *Matrix) row(r int) *Vector {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitvec: row %d out of range [0,%d)", r, m.rows))
	}
	return m.data[r]
}

// SetRow overwrites row r with src (length must equal Cols).
func (m *Matrix) SetRow(r int, src *Vector) { m.row(r).CopyFrom(src) }

// Col extracts column c as a new Vector of length Rows.
func (m *Matrix) Col(c int) *Vector {
	if c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitvec: col %d out of range [0,%d)", c, m.cols))
	}
	v := New(m.rows)
	for r := 0; r < m.rows; r++ {
		if m.data[r].Bit(c) {
			v.Set(r, true)
		}
	}
	return v
}

// XorRow XORs src into row r in place.
func (m *Matrix) XorRow(r int, src *Vector) { m.row(r).Xor(src) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]*Vector, m.rows)}
	for i, v := range m.data {
		c.data[i] = v.Clone()
	}
	return c
}

// Equal reports whether both matrices have identical dimensions and bits.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if !m.data[i].Equal(other.data[i]) {
			return false
		}
	}
	return true
}

// PopCount returns the total number of set bits.
func (m *Matrix) PopCount() int {
	c := 0
	for _, v := range m.data {
		c += v.PopCount()
	}
	return c
}

// Zero clears every bit.
func (m *Matrix) Zero() {
	for _, v := range m.data {
		v.Zero()
	}
}

// Diff returns the set of (row, col) positions at which m and other differ.
func (m *Matrix) Diff(other *Matrix) [][2]int {
	if m.rows != other.rows || m.cols != other.cols {
		panic("bitvec: Diff dimension mismatch")
	}
	var out [][2]int
	for r := 0; r < m.rows; r++ {
		d := m.data[r].Clone()
		d.Xor(other.data[r])
		for _, c := range d.Ones() {
			out = append(out, [2]int{r, c})
		}
	}
	return out
}
