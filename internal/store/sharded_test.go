package store

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

var testCfg = pcache.Config{Sets: 16, Ways: 2, LineBytes: 64, Banks: 4}

func newSharded(t *testing.T, shards int) (*Sharded, *pcache.MapBacking) {
	t.Helper()
	backing := pcache.NewMapBacking(testCfg.LineBytes)
	s, err := New(Config{Shards: shards, Cache: testCfg}, backing)
	if err != nil {
		t.Fatal(err)
	}
	return s, backing
}

func TestShardedRoutesByLine(t *testing.T) {
	s, _ := newSharded(t, 4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	// Line L lands on shard L mod 4.
	for line := uint64(0); line < 16; line++ {
		addr := line*64 + 8
		if got, want := s.ShardOf(addr), int(line%4); got != want {
			t.Fatalf("ShardOf(line %d) = %d, want %d", line, got, want)
		}
	}
	// Writes land on the owning shard only.
	if err := s.Write(5*64, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if st := s.Shard(1).Stats(); st.Accesses != 1 {
		t.Fatalf("owning shard saw %d accesses", st.Accesses)
	}
	for _, i := range []int{0, 2, 3} {
		if st := s.Shard(i).Stats(); st.Accesses != 0 {
			t.Fatalf("shard %d saw %d accesses for another shard's line", i, st.Accesses)
		}
	}
	got, err := s.Read(5*64, 1)
	if err != nil || got[0] != 0xAB {
		t.Fatalf("read back %x, %v", got, err)
	}
}

func TestShardedBackingSeesGlobalAddresses(t *testing.T) {
	s, backing := newSharded(t, 4)
	want := map[uint64]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		line := uint64(rng.Intn(64))
		v := byte(rng.Intn(256))
		if err := s.Write(line*64, []byte{v}); err != nil {
			t.Fatal(err)
		}
		want[line] = v
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// After a flush the backing must hold every line at its ORIGINAL
	// global address — the shard address contraction is invisible.
	for line, v := range want {
		if got := backing.ReadLine(line * 64)[0]; got != v {
			t.Fatalf("backing line %d = %#x, want %#x", line, got, v)
		}
	}
}

func TestShardedBatchRouting(t *testing.T) {
	s, _ := newSharded(t, 4)
	const n = 64
	wops := make([]pcache.WriteOp, n)
	for i := range wops {
		wops[i] = pcache.WriteOp{Addr: uint64(i) * 64, Data: []byte{byte(i), byte(i + 1)}}
	}
	if failed := s.WriteBatch(wops); failed != 0 {
		t.Fatalf("WriteBatch failed %d ops", failed)
	}
	rops := make([]pcache.ReadOp, n)
	for i := range rops {
		rops[i] = pcache.ReadOp{Addr: uint64(i) * 64, Dst: make([]byte, 2)}
	}
	if failed := s.ReadBatch(rops); failed != 0 {
		t.Fatalf("ReadBatch failed %d ops", failed)
	}
	for i, op := range rops {
		if op.Err != nil || !bytes.Equal(op.Dst, []byte{byte(i), byte(i + 1)}) {
			t.Fatalf("op %d: dst %x err %v", i, op.Dst, op.Err)
		}
	}
	// The batch reached every shard.
	for i := 0; i < 4; i++ {
		if st := s.Shard(i).Stats(); st.Accesses == 0 {
			t.Fatalf("shard %d saw no batch traffic", i)
		}
	}
}

func TestShardedBatchSameLineOrder(t *testing.T) {
	s, _ := newSharded(t, 4)
	// Same-address writes in one batch must land last-wins.
	ops := []pcache.WriteOp{
		{Addr: 3 * 64, Data: []byte{1}},
		{Addr: 3 * 64, Data: []byte{2}},
		{Addr: 3 * 64, Data: []byte{3}},
	}
	if failed := s.WriteBatch(ops); failed != 0 {
		t.Fatalf("failed %d", failed)
	}
	got, err := s.Read(3*64, 1)
	if err != nil || got[0] != 3 {
		t.Fatalf("got %x, %v; want 03", got, err)
	}
}

func TestShardedBatchPerOpErrors(t *testing.T) {
	s, _ := newSharded(t, 4)
	ops := []pcache.ReadOp{
		{Addr: 60, Dst: make([]byte, 8)}, // crosses a line boundary
		{Addr: 64, Dst: make([]byte, 1)},
	}
	if failed := s.ReadBatch(ops); failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	if ops[0].Err == nil || ops[1].Err != nil {
		t.Fatalf("per-op errors wrong: %v / %v", ops[0].Err, ops[1].Err)
	}
}

func TestShardedStatsAndAggregates(t *testing.T) {
	s, _ := newSharded(t, 2)
	for i := 0; i < 40; i++ {
		if err := s.Write(uint64(i)*64, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Read(uint64(i)*64, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Accesses != 80 {
		t.Fatalf("Accesses = %d, want 80", st.Accesses)
	}
	if st.Hits+st.Misses+st.Bypassed != st.Accesses {
		t.Fatalf("incoherent stats: %+v", st)
	}
	if got := s.Shard(0).Stats().Accesses + s.Shard(1).Stats().Accesses; got != st.Accesses {
		t.Fatalf("shard sum %d != aggregate %d", got, st.Accesses)
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Counter("store_accesses_total"); got != 80 {
		t.Fatalf("store_accesses_total = %d, want 80", got)
	}
	if snap.Gauge("store_shards") != 2 {
		t.Fatalf("store_shards = %d", snap.Gauge("store_shards"))
	}
	if snap.Counter("store_hits_total") > snap.Counter("store_accesses_total") {
		t.Fatal("aggregate hits exceed accesses")
	}
	// Per-shard metrics are present under their prefixes and sum to
	// the aggregate.
	perShard := snap.Counter("shard0_pcache_accesses_total") + snap.Counter("shard1_pcache_accesses_total")
	if perShard != 80 {
		names := snap.Names()
		t.Fatalf("per-shard accesses sum %d, want 80 (names: %v)", perShard, names[:min(len(names), 12)])
	}
}

func TestShardedRegisterMetricsMirror(t *testing.T) {
	s, _ := newSharded(t, 2)
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	extra := obs.NewRegistry()
	s.RegisterMetrics(extra)
	if got := extra.Snapshot().Counter("store_accesses_total"); got != 1 {
		t.Fatalf("mirror store_accesses_total = %d, want 1", got)
	}
	if got := extra.Snapshot().Counter("shard0_resilience_dues_total"); got != 0 {
		t.Fatalf("mirror shard0 dues = %d", got)
	}
}

func TestShardedCtxVariants(t *testing.T) {
	s, _ := newSharded(t, 2)
	ctx := context.Background()
	if err := s.WriteCtx(ctx, 64, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCtx(ctx, 64, 1)
	if err != nil || got[0] != 0x42 {
		t.Fatalf("ReadCtx: %x, %v", got, err)
	}
	dst := make([]byte, 1)
	if err := s.ReadIntoCtx(ctx, 64, dst); err != nil || dst[0] != 0x42 {
		t.Fatalf("ReadIntoCtx: %x, %v", dst, err)
	}
	if err := s.ReadInto(64, dst); err != nil || dst[0] != 0x42 {
		t.Fatalf("ReadInto: %x, %v", dst, err)
	}
	if err := s.FlushCtx(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestShardedStartStop(t *testing.T) {
	backing := pcache.NewMapBacking(testCfg.LineBytes)
	s, err := New(Config{
		Shards:   4,
		Cache:    testCfg,
		Scrubber: &resilience.ScrubberConfig{Interval: time.Millisecond},
		Watchdog: &resilience.WatchdogConfig{Budget: 10 * time.Millisecond},
	}, backing)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i := 0; i < 200; i++ {
		if err := s.Write(uint64(i)*64, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the per-shard scrubbers take at least one pass each.
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for i := 0; i < 4; i++ {
			if s.Shard(i).Report().ScrubPasses == 0 {
				all = false
			}
		}
		if all || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	for i := 0; i < 4; i++ {
		if s.Shard(i).Report().ScrubPasses == 0 {
			t.Fatalf("shard %d scrubber never swept", i)
		}
	}
}

func TestShardedRejectsBadConfig(t *testing.T) {
	backing := pcache.NewMapBacking(64)
	if _, err := New(Config{Shards: 3, Cache: testCfg}, backing); err == nil {
		t.Fatal("3 shards accepted")
	}
	if _, err := New(Config{Shards: 2, Cache: pcache.Config{Sets: 5}}, backing); err == nil {
		t.Fatal("bad cache config accepted")
	}
}

func TestShardedZeroShardsIsOne(t *testing.T) {
	backing := pcache.NewMapBacking(64)
	s, err := New(Config{Cache: testCfg}, backing)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if err := s.Write(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0, 1)
	if err != nil || got[0] != 9 {
		t.Fatalf("%x, %v", got, err)
	}
}

// recordingSink captures array labels and coordinates so the test can
// check shard globalisation.
type recordingSink struct {
	obs.NopSink
	arrays chan string
	sets   chan int
}

func (r *recordingSink) UncorrectableDetected(array string, set, way int) {
	select {
	case r.arrays <- array:
	default:
	}
	select {
	case r.sets <- set:
	default:
	}
}

func TestShardSinkGlobalisesCoordinates(t *testing.T) {
	sink := &recordingSink{arrays: make(chan string, 8), sets: make(chan int, 8)}
	backing := pcache.NewMapBacking(64)
	s, err := New(Config{
		Shards:     2,
		Cache:      pcache.Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 1},
		Resilience: resilience.Config{Sink: sink},
	}, backing)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a beyond-coverage double fault on shard 1 and read through
	// it; the sink must see the shard label and a globalised set index.
	c := s.Shard(1).Cache()
	if err := c.Write(0, []byte{0x5A}); err != nil { // shard-local addr
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))
	if _, err := s.Read(1*64, 1); err != nil { // global line 1 → shard 1
		t.Fatal(err)
	}
	select {
	case a := <-sink.arrays:
		if a != "shard1/data" {
			t.Fatalf("array label = %q, want shard1/data", a)
		}
	default:
		t.Fatal("no UncorrectableDetected event reached the sink")
	}
	if set := <-sink.sets; set != 32 { // local set 0 + 1×32
		t.Fatalf("globalised set = %d, want 32", set)
	}
}

// ExampleSharded shows the sharded store serving a striped keyspace.
func ExampleSharded() {
	backing := pcache.NewMapBacking(64)
	s, _ := New(Config{
		Shards: 4,
		Cache:  pcache.Config{Sets: 16, Ways: 2, LineBytes: 64},
	}, backing)
	_ = s.Write(0x1000, []byte("striped"))
	got, _ := s.Read(0x1000, 7)
	fmt.Printf("%s via shard %d of %d\n", got, s.ShardOf(0x1000), s.NumShards())
	// Output: striped via shard 0 of 4
}
