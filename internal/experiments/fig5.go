package experiments

import (
	"fmt"

	"twodcache/internal/sim"
	"twodcache/internal/stats"
	"twodcache/internal/workload"
)

// fig5Protections are the four bars of Fig. 5, in paper order.
func fig5Protections() []sim.Protection {
	return []sim.Protection{
		{L1TwoD: true},
		{L1TwoD: true, PortStealing: true},
		{L2TwoD: true},
		{L1TwoD: true, L2TwoD: true, PortStealing: true},
	}
}

// Fig5 reproduces Fig. 5(a) or (b): percentage IPC loss of each
// protection configuration relative to the unprotected baseline, per
// workload plus the average, on the given system.
func Fig5(cfg sim.SystemConfig, opt Options) Table {
	t := Table{
		ID:     "fig5" + suffixFor(cfg),
		Title:  fmt.Sprintf("Fig. 5(%s): %% IPC loss, %s baseline", suffixFor(cfg), cfg.Name),
		Header: []string{"workload", "L1 D-cache", "L1 + port stealing", "L2 cache", "L1(PS)+L2"},
		Notes: []string{
			fmt.Sprintf("matched-pair samples=%d, warmup=%d, measure=%d cycles", opt.Samples, opt.Warmup, opt.Measure),
			"synthetic workload traces substitute for FLEXUS full-system runs",
		},
	}
	prots := fig5Protections()
	avgs := make([]stats.Sample, len(prots))
	for _, prof := range workload.Profiles() {
		row := []string{prof.Name}
		for i, prot := range prots {
			rep, err := sim.PerformanceLoss(cfg, prot, prof, opt.Samples, opt.Warmup, opt.Measure)
			if err != nil {
				panic(fmt.Sprintf("fig5 %s/%s: %v", prof.Name, prot, err))
			}
			row = append(row, f1(rep.MeanLossPct)+"%")
			avgs[i].Add(rep.MeanLossPct)
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"Average"}
	for i := range prots {
		avg = append(avg, f1(avgs[i].Mean())+"%")
	}
	t.Rows = append(t.Rows, avg)
	return t
}

func suffixFor(cfg sim.SystemConfig) string {
	if cfg.OoO {
		return "a"
	}
	return "b"
}
