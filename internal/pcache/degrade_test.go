package pcache

import (
	"errors"
	"sync"
	"testing"
)

// beyondCoverageCache builds a single-bank cache whose data array pairs
// rows 0 and 32 in vertical group 0 (64 rows over V=32), and plants the
// guaranteed-ambiguous error there: codeword bits 0 and 8 share an EDC8
// parity column, so flips at those bits in the same word slot of both
// rows defeat both row-mode and column-mode recovery deterministically.
// Row 0 is set 0 way 0; row 32 is set 16 way 0.
func beyondCoverageCache(t *testing.T) (*Cache, *MapBacking) {
	t.Helper()
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 32, Ways: 2, LineBytes: 64, Banks: 1}, back)
	if err := c.Write(0, []byte{0x11}); err != nil { // line 0 → set 0, way 0
		t.Fatal(err)
	}
	if err := c.Write(16*64, []byte{0x22}); err != nil { // line 16 → set 16, way 0
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(0)
	lay := da.Layout()
	da.FlipBit(0, lay.PhysColumn(0, 0))
	da.FlipBit(32, lay.PhysColumn(0, 8))
	return c, back
}

func TestUncorrectableDeterministic(t *testing.T) {
	c, _ := beyondCoverageCache(t)
	_, err := c.Read(0, 1)
	if err == nil {
		t.Fatal("ambiguous beyond-coverage error went undetected")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("wrong error: %v", err)
	}
	var ue *UncorrectableError
	if !errors.As(err, &ue) {
		t.Fatalf("not a located *UncorrectableError: %v", err)
	}
	if ue.Array != ArrayData || ue.Set != 0 || ue.Way != 0 {
		t.Fatalf("wrong location: %+v", ue)
	}
	if c.Stats().Uncorrectable == 0 {
		t.Fatal("DUE not counted")
	}
}

func TestDecommissionYieldsUsableSmallerCache(t *testing.T) {
	c, _ := beyondCoverageCache(t)
	if _, err := c.Read(0, 1); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("expected DUE, got %v", err)
	}
	epochBefore := c.LossEpoch(0)

	// Degrade: retire the failed way. The line was flushed, so no dirty
	// data is lost; the address survives via refetch into another way.
	if lost := c.Decommission(0, 0); lost {
		t.Fatal("clean line reported as lost dirty data")
	}
	if c.LossEpoch(0) == epochBefore {
		t.Fatal("decommission did not advance the loss epoch")
	}
	if c.DisabledWays() != 1 {
		t.Fatalf("disabled ways = %d", c.DisabledWays())
	}
	got, err := c.Read(0, 1)
	if err != nil || got[0] != 0x11 {
		t.Fatalf("refetch after decommission: %v %v", got, err)
	}

	// The partner row of the ambiguous pair (set 16) still carries its
	// half of the damage; its DUE surfaces independently and the same
	// degrade path retires it too.
	if _, err := c.Read(16*64, 1); err != nil {
		if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("unexpected error %v", err)
		}
		c.Decommission(16, 0)
	}
	got, err = c.Read(16*64, 1)
	if err != nil || got[0] != 0x22 {
		t.Fatalf("set 16 after degrade: %v %v", got, err)
	}

	// The shrunken cache keeps working across its whole address space.
	for l := uint64(0); l < 64; l++ {
		if err := c.Write(l*64, []byte{byte(l + 1)}); err != nil {
			t.Fatalf("line %d write: %v", l, err)
		}
	}
	for l := uint64(0); l < 64; l++ {
		got, err := c.Read(l*64, 1)
		if err != nil || got[0] != byte(l+1) {
			t.Fatalf("line %d read: %v %v", l, got, err)
		}
	}
}

func TestFullyDecommissionedSetBypasses(t *testing.T) {
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64}, back)
	c.Decommission(3, 0)
	c.Decommission(3, 1)

	addr := uint64(3 * 64) // line 3 → set 3
	if err := c.Write(addr, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	// The write went straight through to backing.
	if back.ReadLine(addr)[0] != 0x5A {
		t.Fatal("bypassed write not in backing store")
	}
	got, err := c.Read(addr, 1)
	if err != nil || got[0] != 0x5A {
		t.Fatalf("bypassed read: %v %v", got, err)
	}
	if c.Stats().Bypassed < 2 {
		t.Fatalf("bypasses not counted: %+v", c.Stats())
	}

	// Other sets are unaffected.
	if err := c.Write(4*64, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Read(4*64, 1); err != nil || got[0] != 0x77 {
		t.Fatalf("neighbour set: %v %v", got, err)
	}

	// Re-enabling restores normal caching for the set.
	c.Reenable(3, 0)
	c.Reenable(3, 1)
	if got, err := c.Read(addr, 1); err != nil || got[0] != 0x5A {
		t.Fatalf("after re-enable: %v %v", got, err)
	}
	if c.Stats().Hits == 0 {
		t.Fatal("no hits recorded")
	}
}

func TestDecommissionDirtyLineCountsLoss(t *testing.T) {
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64}, back)
	if err := c.Write(0, []byte{0xEE}); err != nil { // dirty, never flushed
		t.Fatal(err)
	}
	// Find which way holds line 0 by decommissioning both; exactly one
	// carries unflushed dirty data.
	lost := 0
	for way := 0; way < 2; way++ {
		if c.Decommission(0, way) {
			lost++
		}
	}
	if lost != 1 {
		t.Fatalf("lost-dirty count = %d, want 1", lost)
	}
	if c.Stats().DirtyLinesLost != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
	// The unflushed value is gone: backing still has the old contents.
	if back.ReadLine(0)[0] != 0 {
		t.Fatal("dirty data unexpectedly reached backing")
	}
}

func TestRecoverWordRungAtCacheLevel(t *testing.T) {
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 16, Ways: 2, LineBytes: 64, SECDEDHorizontal: true}, back)
	if err := c.Write(0, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	da, _ := c.BankArrays(c.BankOf(0))
	recBefore := da.Stats().Recoveries

	// Single-bit data fault in set 0's line: the word rung fixes it
	// without an array-wide recovery march.
	da.FlipBit(0, 0)
	if !c.RecoverWord(ArrayData, 0, 0) {
		t.Fatal("word rung failed on a SECDED-correctable fault")
	}
	if da.Stats().Recoveries != recBefore {
		t.Fatal("word rung escalated to full recovery")
	}
	got, err := c.Read(0, 1)
	if err != nil || got[0] != 0xAB {
		t.Fatalf("after word recovery: %v %v", got, err)
	}

	// Tag fault: same rung, tag flavour.
	_, ta := c.BankArrays(c.BankOf(0))
	ta.FlipBit(0, 0)
	if !c.RecoverWord(ArrayTags, 0, 0) {
		t.Fatal("tag word rung failed")
	}
}

func TestScrubBankReportsVictims(t *testing.T) {
	c, _ := beyondCoverageCache(t)
	ok, victims := c.ScrubBank(0)
	if ok {
		t.Fatal("scrub claimed success over an ambiguous error")
	}
	want := map[WayRef]bool{{Set: 0, Way: 0}: true, {Set: 16, Way: 0}: true}
	if len(victims) != 2 || !want[victims[0]] || !want[victims[1]] {
		t.Fatalf("victims %v, want set0/way0 and set16/way0", victims)
	}
	// Decommissioning the victims restores consistency.
	for _, v := range victims {
		c.Decommission(v.Set, v.Way)
	}
	if ok, _ := c.ScrubBank(0); !ok {
		t.Fatal("bank still inconsistent after retiring victims")
	}
}

// TestLossEpochBumpBeforeExpose pins the ordering contract of every
// lossEpochs.Add site (Repair, Decommission — both under the bank
// lock, both before any content is destroyed): no observer may ever
// see reverted content alongside a stale epoch. The check is the soak
// oracle's, run against concurrent wipers: capture the epoch before a
// write; a read that then returns something else is legitimate only if
// the epoch has advanced since. Run under -race this also exercises
// the epoch/wipe memory ordering.
func TestLossEpochBumpBeforeExpose(t *testing.T) {
	back := NewMapBacking(64)
	c := MustNew(Config{Sets: 4, Ways: 2, LineBytes: 64, Banks: 1}, back)
	const addr = 0 // line 0 → set 0
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Wiper 1: machine-check repairs of the set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			c.Repair(addr)
		}
	}()
	// Wiper 2: decommission/reenable cycles over the set's ways.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			way := i % 2
			c.Decommission(0, way)
			c.Reenable(0, way)
		}
	}()

	for i := 0; i < 20000; i++ {
		val := byte(i)
		e0 := c.LossEpoch(0)
		if err := c.Write(addr, []byte{val}); err != nil {
			continue // set fully decommissioned at that instant
		}
		got, err := c.Read(addr, 1)
		if err != nil {
			continue
		}
		if got[0] != val && c.LossEpoch(0) == e0 {
			t.Fatalf("iteration %d: content reverted (got %#x want %#x) with the loss epoch unmoved", i, got[0], val)
		}
	}
	close(done)
	wg.Wait()
}
