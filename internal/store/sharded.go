package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"twodcache/internal/obs"
	"twodcache/internal/pcache"
	"twodcache/internal/resilience"
)

// Config assembles a sharded store.
type Config struct {
	// Shards is the number of independent engine instances the address
	// space is striped across (a power of two; zero selects 1). Line
	// addresses are interleaved: line L lands on shard L mod Shards, so
	// sequential lines spread round-robin and no shard owns a hot
	// contiguous region.
	Shards int
	// Cache is the PER-SHARD cache geometry: total capacity is
	// Shards × Sets × Ways lines.
	Cache pcache.Config
	// Resilience is the per-shard engine template. Metrics, if set, is
	// the root registry every shard registers into under a "shard<i>_"
	// prefix (nil selects a fresh one); Sink is wrapped per shard so
	// event coordinates are globalised before delivery.
	Resilience resilience.Config
	// Scrubber, when non-nil, gives every shard its own background
	// scrubber with this configuration (Start/Stop run them).
	Scrubber *resilience.ScrubberConfig
	// Watchdog, when non-nil, gives every shard its own recovery
	// watchdog with this configuration (Start/Stop run them).
	Watchdog *resilience.WatchdogConfig
}

// shard is one fully independent protection domain: its own cache,
// engine (bank locks, breakers, single-flight table), and optional
// scrubber and watchdog. Nothing here is shared with other shards.
type shard struct {
	engine   *resilience.Engine
	scrubber *resilience.Scrubber
	watchdog *resilience.Watchdog
}

// Sharded stripes line addresses across N independent resilience
// engines. A storm, an open breaker, or a wedged repair on one shard
// is invisible to the others: they share no locks, no breaker state,
// and no scrub or watchdog schedule. All methods are safe for
// concurrent use.
type Sharded struct {
	shards    []*shard
	lineBytes uint64
	shardBits uint
	mask      uint64
	metrics   *obs.Registry
	sink      obs.Sink
	setsPer   int
	banksPer  int
}

// New builds a Shards-way sharded store over one backing. Every shard
// sees the full global address space: its cache addresses are
// contracted (the shard-selector bits dropped) and re-expanded by a
// per-shard backing adapter, so the backing observes exactly the
// addresses the caller used — a 1-shard and an N-shard store over the
// same workload produce identical backing contents.
func New(cfg Config, backing pcache.Backing) (*Sharded, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("store: shards %d must be a power of two", cfg.Shards)
	}
	if err := cfg.Cache.Validate(); err != nil {
		return nil, err
	}
	root := cfg.Resilience.Metrics
	if root == nil {
		root = obs.NewRegistry()
	}
	userSink := cfg.Resilience.Sink
	if userSink == nil {
		userSink = obs.NopSink{}
	}
	s := &Sharded{
		lineBytes: uint64(cfg.Cache.LineBytes),
		shardBits: uint(bitsFor(n)),
		mask:      uint64(n - 1),
		metrics:   root,
		sink:      userSink,
		setsPer:   cfg.Cache.Sets,
	}
	for i := 0; i < n; i++ {
		cache, err := pcache.New(cfg.Cache, &shardBacking{
			parent:    backing,
			shard:     uint64(i),
			shardBits: s.shardBits,
			lineBytes: s.lineBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		s.banksPer = cache.NumBanks()
		ecfg := cfg.Resilience
		ecfg.Metrics = root.WithPrefix(fmt.Sprintf("shard%d_", i))
		ecfg.Sink = s.wrapSink(userSink, i)
		sh := &shard{engine: resilience.New(cache, ecfg)}
		if cfg.Scrubber != nil {
			sh.scrubber = sh.engine.NewScrubber(*cfg.Scrubber)
		}
		if cfg.Watchdog != nil {
			sh.watchdog = sh.engine.NewWatchdog(*cfg.Watchdog)
		}
		s.shards = append(s.shards, sh)
	}
	s.registerAggregates(root)
	return s, nil
}

// bitsFor returns log2 of a power of two.
func bitsFor(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Start launches every shard's scrubber and watchdog goroutines (those
// configured at construction). Pair with Stop.
func (s *Sharded) Start() {
	for _, sh := range s.shards {
		if sh.scrubber != nil {
			sh.scrubber.Start()
		}
		if sh.watchdog != nil {
			sh.watchdog.Start()
		}
	}
}

// Stop halts every shard's background goroutines and waits for them.
func (s *Sharded) Stop() {
	for _, sh := range s.shards {
		if sh.watchdog != nil {
			sh.watchdog.Stop()
		}
		if sh.scrubber != nil {
			sh.scrubber.Stop()
		}
	}
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf maps an address to the shard that owns its line.
func (s *Sharded) ShardOf(addr uint64) int {
	return int((addr / s.lineBytes) & s.mask)
}

// Shard exposes one shard's engine — for inspection (reports, breaker
// state) and fault injection in tests; production traffic should go
// through the Sharded methods, which translate addresses.
func (s *Sharded) Shard(i int) *resilience.Engine { return s.shards[i].engine }

// Metrics returns the root registry: per-shard metrics live under
// "shard<i>_" prefixes, cross-shard aggregates under "store_".
func (s *Sharded) Metrics() *obs.Registry { return s.metrics }

// Locate returns the engine owning addr and addr contracted into that
// shard's local address space — for repair and inspection tooling that
// must reach one shard's cache directly; normal traffic uses the
// Sharded methods, which translate addresses themselves.
func (s *Sharded) Locate(addr uint64) (*resilience.Engine, uint64) {
	return s.shards[s.ShardOf(addr)].engine, s.local(addr)
}

// local contracts a global address to the owning shard's address
// space: the shard-selector bits are dropped from the line number.
func (s *Sharded) local(addr uint64) uint64 {
	line, off := addr/s.lineBytes, addr%s.lineBytes
	return (line>>s.shardBits)*s.lineBytes + off
}

// globalErr rewrites shard-local coordinates inside typed errors into
// the global namespace, exactly as shardSink does for events: array
// names gain the "shard<i>/" label and set/bank indices are offset by
// the shard's base (unknown coordinates, -1, pass through). Without
// this, an error's text and the event stream would name two different
// locations for the same fault. The rebuilt errors preserve the full
// errors.Is/As chain: the same concrete types are returned, wrapping
// the same sentinels and causes.
func (s *Sharded) globalErr(shard int, err error) error {
	if err == nil {
		return nil
	}
	off := func(v, base int) int {
		if v < 0 {
			return v
		}
		return v + base
	}
	var ue *pcache.UncorrectableError
	if errors.As(err, &ue) {
		return &pcache.UncorrectableError{
			Array: fmt.Sprintf("shard%d/%s", shard, ue.Array),
			Set:   off(ue.Set, shard*s.setsPer),
			Way:   ue.Way,
		}
	}
	var rip *resilience.RecoveryInProgressError
	if errors.As(err, &rip) {
		return &resilience.RecoveryInProgressError{
			Bank:    off(rip.Bank, shard*s.banksPer),
			Array:   fmt.Sprintf("shard%d/%s", shard, rip.Array),
			Set:     off(rip.Set, shard*s.setsPer),
			Way:     rip.Way,
			Rung:    rip.Rung,
			Elapsed: rip.Elapsed,
			Err:     rip.Err,
		}
	}
	return err
}

// Read returns n bytes at addr, recovering faults transparently.
func (s *Sharded) Read(addr uint64, n int) ([]byte, error) {
	sh := s.ShardOf(addr)
	out, err := s.shards[sh].engine.Read(s.local(addr), n)
	return out, s.globalErr(sh, err)
}

// ReadCtx is Read bounded by a context deadline.
func (s *Sharded) ReadCtx(ctx context.Context, addr uint64, n int) ([]byte, error) {
	sh := s.ShardOf(addr)
	out, err := s.shards[sh].engine.ReadCtx(ctx, s.local(addr), n)
	return out, s.globalErr(sh, err)
}

// ReadInto reads len(dst) bytes at addr into dst without allocating.
func (s *Sharded) ReadInto(addr uint64, dst []byte) error {
	sh := s.ShardOf(addr)
	return s.globalErr(sh, s.shards[sh].engine.ReadInto(s.local(addr), dst))
}

// ReadIntoCtx is ReadInto bounded by a context deadline.
func (s *Sharded) ReadIntoCtx(ctx context.Context, addr uint64, dst []byte) error {
	sh := s.ShardOf(addr)
	return s.globalErr(sh, s.shards[sh].engine.ReadIntoCtx(ctx, s.local(addr), dst))
}

// Write stores data at addr, recovering faults transparently.
func (s *Sharded) Write(addr uint64, data []byte) error {
	sh := s.ShardOf(addr)
	return s.globalErr(sh, s.shards[sh].engine.Write(s.local(addr), data))
}

// WriteCtx is Write bounded by a context deadline.
func (s *Sharded) WriteCtx(ctx context.Context, addr uint64, data []byte) error {
	sh := s.ShardOf(addr)
	return s.globalErr(sh, s.shards[sh].engine.WriteCtx(ctx, s.local(addr), data))
}

// batchScratch recycles the router's per-batch working set — the
// per-shard index buckets and the local (address-contracted) op slice —
// so steady-state batch routing allocates nothing per op.
var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

type batchScratch struct {
	groups [][]int
	rops   []pcache.ReadOp
	wops   []pcache.WriteOp
}

// buckets returns n per-shard index buckets, reset and ready to append.
func (sc *batchScratch) buckets(n int) [][]int {
	for len(sc.groups) < n {
		sc.groups = append(sc.groups, nil)
	}
	g := sc.groups[:n]
	for i := range g {
		g[i] = g[i][:0]
	}
	return g
}

// ReadBatch groups ops by owning shard and hands each shard its group
// in one batched call, so the per-bank amortisation composes with
// sharding. Per-op outcomes land in each op's Err field; the return
// value counts ops that failed even after recovery.
func (s *Sharded) ReadBatch(ops []pcache.ReadOp) (failed int) {
	return s.ReadBatchCtx(context.Background(), ops)
}

// ReadBatchCtx is ReadBatch with each shard's recovery work bounded by
// ctx. The context is threaded to every shard independently: a
// deadline abort inside one shard's ladder does not strand the other
// shards' amortised passes — every shard still runs (or, once ctx has
// expired, stamps its ops with the context error), so every op ends
// with a definite outcome.
func (s *Sharded) ReadBatchCtx(ctx context.Context, ops []pcache.ReadOp) (failed int) {
	if len(s.shards) == 1 {
		failed = s.shards[0].engine.ReadBatchCtx(ctx, ops)
		for i := range ops {
			ops[i].Err = s.globalErr(0, ops[i].Err)
		}
		return failed
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	groups := sc.buckets(len(s.shards))
	for i := range ops {
		sh := s.ShardOf(ops[i].Addr)
		groups[sh] = append(groups[sh], i)
	}
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		local := sc.rops[:0]
		for _, i := range idxs {
			local = append(local, pcache.ReadOp{Addr: s.local(ops[i].Addr), Dst: ops[i].Dst})
		}
		sc.rops = local[:0]
		failed += s.shards[sh].engine.ReadBatchCtx(ctx, local)
		for j, i := range idxs {
			ops[i].Err = s.globalErr(sh, local[j].Err)
		}
	}
	return failed
}

// WriteBatch groups ops by owning shard and hands each shard its group
// in one batched call. Within a shard, ops keep their relative order,
// so same-address writes land last-wins exactly as issued.
func (s *Sharded) WriteBatch(ops []pcache.WriteOp) (failed int) {
	return s.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch with each shard's recovery work bounded
// by ctx; the per-shard threading contract matches ReadBatchCtx.
func (s *Sharded) WriteBatchCtx(ctx context.Context, ops []pcache.WriteOp) (failed int) {
	if len(s.shards) == 1 {
		failed = s.shards[0].engine.WriteBatchCtx(ctx, ops)
		for i := range ops {
			ops[i].Err = s.globalErr(0, ops[i].Err)
		}
		return failed
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	groups := sc.buckets(len(s.shards))
	for i := range ops {
		sh := s.ShardOf(ops[i].Addr)
		groups[sh] = append(groups[sh], i)
	}
	for sh, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		local := sc.wops[:0]
		for _, i := range idxs {
			local = append(local, pcache.WriteOp{Addr: s.local(ops[i].Addr), Data: ops[i].Data})
		}
		sc.wops = local[:0]
		failed += s.shards[sh].engine.WriteBatchCtx(ctx, local)
		for j, i := range idxs {
			ops[i].Err = s.globalErr(sh, local[j].Err)
		}
	}
	return failed
}

// Flush writes back every shard's dirty lines. All shards are flushed
// even if some fail; the error joins every shard failure.
func (s *Sharded) Flush() error {
	var errs []error
	for i, sh := range s.shards {
		if err := sh.engine.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, s.globalErr(i, err)))
		}
	}
	return errors.Join(errs...)
}

// FlushCtx is Flush bounded by a context deadline.
func (s *Sharded) FlushCtx(ctx context.Context) error {
	var errs []error
	for i, sh := range s.shards {
		if err := sh.engine.FlushCtx(ctx); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, s.globalErr(i, err)))
		}
	}
	return errors.Join(errs...)
}

// Stats sums the per-shard cache counters. Each shard's snapshot is
// coherent and its counters monotonic, so the sums obey the same
// invariants (Hits+Misses ≤ Accesses) any single snapshot does.
func (s *Sharded) Stats() pcache.Stats {
	var out pcache.Stats
	for _, sh := range s.shards {
		st := sh.engine.Stats()
		out.Accesses += st.Accesses
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Writebacks += st.Writebacks
		out.ErrorsRecovered += st.ErrorsRecovered
		out.Uncorrectable += st.Uncorrectable
		out.Bypassed += st.Bypassed
		out.DirtyLinesLost += st.DirtyLinesLost
	}
	return out
}

// RegisterMetrics mirrors every shard's instrumentation into r under
// "shard<i>_" prefixes and registers the cross-shard aggregates. It
// panics on duplicate names — call it at most once per registry (the
// construction-time root registry is already populated).
func (s *Sharded) RegisterMetrics(r *obs.Registry) {
	for i, sh := range s.shards {
		sh.engine.RegisterMetrics(r.WithPrefix(fmt.Sprintf("shard%d_", i)))
	}
	s.registerAggregates(r)
}

// registerAggregates registers cross-shard store_* rollups. Outcome
// counters (hits, misses) are registered — hence snapshot-read —
// before the access counter, and clamped to it, so a concurrent
// snapshot can never show more outcomes than accesses.
func (s *Sharded) registerAggregates(r *obs.Registry) {
	sum := func(field func(pcache.Stats) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, sh := range s.shards {
				t += field(sh.engine.Stats())
			}
			return t
		}
	}
	r.GaugeFunc("store_shards", "independent shards striping the address space",
		func() int64 { return int64(len(s.shards)) })
	r.CounterFunc("store_hits_total", "cache hits, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Hits }))
	r.CounterFunc("store_misses_total", "cache misses, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Misses }))
	r.CounterFunc("store_accesses_total", "cache accesses, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Accesses }))
	r.CounterFunc("store_writebacks_total", "dirty writebacks, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Writebacks }))
	r.CounterFunc("store_errors_recovered_total", "errors recovered, all shards",
		sum(func(st pcache.Stats) uint64 { return st.ErrorsRecovered }))
	r.CounterFunc("store_uncorrectable_total", "machine-check events, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Uncorrectable }))
	r.CounterFunc("store_bypassed_total", "bypassed accesses, all shards",
		sum(func(st pcache.Stats) uint64 { return st.Bypassed }))
	r.CounterFunc("store_dirty_lines_lost_total", "dirty lines lost, all shards",
		sum(func(st pcache.Stats) uint64 { return st.DirtyLinesLost }))
	r.ClampLE("store_hits_total", "store_accesses_total")
	r.ClampLE("store_misses_total", "store_accesses_total")
}

// SetEventSink installs s on every shard, wrapped so coordinates are
// globalised. Nil resets to the no-op sink.
func (s *Sharded) SetEventSink(sink obs.Sink) {
	if sink == nil {
		sink = obs.NopSink{}
	}
	s.sink = sink
	for i, sh := range s.shards {
		sh.engine.SetEventSink(s.wrapSink(sink, i))
	}
}

// wrapSink labels one shard's events before they reach the user sink.
func (s *Sharded) wrapSink(inner obs.Sink, shard int) obs.Sink {
	return &shardSink{
		inner:   inner,
		label:   fmt.Sprintf("shard%d/", shard),
		setOff:  shard * s.setsPer,
		bankOff: shard * s.banksPer,
	}
}

// shardBacking adapts the shared parent backing into one shard's
// contracted address space: global line (L<<shardBits)|shard appears
// to the shard as local line L, so the parent always sees the
// caller's original addresses. The adapter is stateless beyond its
// wiring; concurrency safety is the parent's.
type shardBacking struct {
	parent    pcache.Backing
	shard     uint64
	shardBits uint
	lineBytes uint64
}

func (b *shardBacking) global(addr uint64) uint64 {
	line := addr / b.lineBytes
	return (line<<b.shardBits | b.shard) * b.lineBytes
}

// ReadLine implements pcache.Backing.
func (b *shardBacking) ReadLine(addr uint64) []byte {
	return b.parent.ReadLine(b.global(addr))
}

// WriteLine implements pcache.Backing.
func (b *shardBacking) WriteLine(addr uint64, data []byte) {
	b.parent.WriteLine(b.global(addr), data)
}

// shardSink globalises one shard's event coordinates before handing
// them to the shared user sink: array names gain a "shard<i>/" prefix
// and set/bank indices are offset into a global namespace (set S of
// shard i becomes i×SetsPerShard+S), so a consumer aggregating events
// from every shard can attribute each one unambiguously. Way indices
// and unknown coordinates (-1) pass through unchanged.
type shardSink struct {
	inner   obs.Sink
	label   string
	setOff  int
	bankOff int
}

func (s *shardSink) set(v int) int {
	if v < 0 {
		return v
	}
	return v + s.setOff
}

func (s *shardSink) bank(v int) int {
	if v < 0 {
		return v
	}
	return v + s.bankOff
}

// RecoveryStart implements obs.Sink.
func (s *shardSink) RecoveryStart(array string, set, way int) {
	s.inner.RecoveryStart(s.label+array, s.set(set), way)
}

// RecoveryEnd implements obs.Sink.
func (s *shardSink) RecoveryEnd(array string, set, way int, success bool, d time.Duration) {
	s.inner.RecoveryEnd(s.label+array, s.set(set), way, success, d)
}

// ScrubPass implements obs.Sink.
func (s *shardSink) ScrubPass(banks int, clean bool, victims int, d time.Duration) {
	s.inner.ScrubPass(banks, clean, victims, d)
}

// DegradeEpoch implements obs.Sink.
func (s *shardSink) DegradeEpoch(set, way int, lostDirty bool) {
	s.inner.DegradeEpoch(s.set(set), way, lostDirty)
}

// UncorrectableDetected implements obs.Sink.
func (s *shardSink) UncorrectableDetected(array string, set, way int) {
	s.inner.UncorrectableDetected(s.label+array, s.set(set), way)
}

// BreakerTransition implements obs.Sink.
func (s *shardSink) BreakerTransition(bank int, from, to, reason string) {
	s.inner.BreakerTransition(s.bank(bank), from, to, reason)
}

// RepairCoalesced implements obs.Sink.
func (s *shardSink) RepairCoalesced(array string, bank, set, way int) {
	s.inner.RepairCoalesced(s.label+array, s.bank(bank), s.set(set), way)
}

// RequestShed implements obs.Sink.
func (s *shardSink) RequestShed(array string, bank, set, way int) {
	s.inner.RequestShed(s.label+array, s.bank(bank), s.set(set), way)
}

// WatchdogFire implements obs.Sink.
func (s *shardSink) WatchdogFire(bank, set, way int, age time.Duration) {
	s.inner.WatchdogFire(s.bank(bank), s.set(set), way, age)
}
