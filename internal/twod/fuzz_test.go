package twod

import (
	"math/rand"
	"testing"

	"twodcache/internal/ecc"
)

// TestRecoverNeverPanicsOnRandomSoup throws arbitrary mixtures of data
// and parity-row flips at the array: recovery may legitimately fail
// (the soup usually exceeds coverage), but it must never panic, and
// when the soup happens to stay inside one coverage box a success must
// restore the golden image.
func TestRecoverNeverPanicsOnRandomSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		a := MustArray(Config{
			Rows: 64, WordsPerRow: 2,
			Horizontal:     ecc.MustEDC(64, 8),
			VerticalGroups: 16,
		})
		fillRandom(a, rng)
		nData := rng.Intn(40)
		for i := 0; i < nData; i++ {
			a.FlipBit(rng.Intn(a.Rows()), rng.Intn(a.RowBits()))
		}
		nPar := rng.Intn(5)
		for i := 0; i < nPar; i++ {
			a.FlipParityBit(rng.Intn(a.VerticalGroups()), rng.Intn(a.RowBits()))
		}
		rep := a.Recover() // must not panic
		if rep.Success {
			// A successful recovery leaves every word checking clean and
			// the parity invariant intact.
			for r := 0; r < a.Rows(); r++ {
				for w := 0; w < 2; w++ {
					if a.checkWord(r, w) != 0 {
						t.Fatalf("trial %d: success with dirty word (%d,%d)", trial, r, w)
					}
				}
			}
			if !parityConsistent(a) {
				t.Fatalf("trial %d: success with inconsistent parity", trial)
			}
		}
	}
}

// TestReadsNeverPanicUnderErrors hammers Read/Write on a continuously
// corrupted array; statuses must be sane and storage must stay usable.
func TestReadsNeverPanicUnderErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := MustArray(Config{
		Rows: 32, WordsPerRow: 2,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 8,
	})
	fillRandom(a, rng)
	for i := 0; i < 3000; i++ {
		switch rng.Intn(4) {
		case 0:
			a.FlipBit(rng.Intn(32), rng.Intn(a.RowBits()))
		case 1:
			a.Write(rng.Intn(32), rng.Intn(2), randVec(rng, 64))
		default:
			_, st := a.Read(rng.Intn(32), rng.Intn(2))
			if st < ReadClean || st > ReadUncorrectable {
				t.Fatalf("bogus status %v", st)
			}
		}
	}
}

// TestVSECDEDNeverPanicsOnRandomSoup mirrors the soup test for the
// vertical-SECDED variant.
func TestVSECDEDNeverPanicsOnRandomSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 40; trial++ {
		a := MustVSECDEDArray(64, 2, ecc.MustEDC(64, 8))
		for r := 0; r < 64; r++ {
			for w := 0; w < 2; w++ {
				a.Write(r, w, randVec(rng, 64))
			}
		}
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			a.FlipBit(rng.Intn(64), rng.Intn(a.RowBits()))
		}
		a.Recover() // must not panic
	}
}
