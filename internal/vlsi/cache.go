package vlsi

import (
	"fmt"

	"twodcache/internal/ecc"
)

// CacheSpec describes a cache data array to be costed. The two specs
// used throughout the paper are the 64 kB L1 (2-way, 2 ports, 1 bank,
// 64-bit words) and the 4 MB L2 (16-way, 1 port, 8 banks, 256-bit
// words).
type CacheSpec struct {
	// Name labels the cache in reports.
	Name string
	// CapacityBytes is the data capacity (check bits are added on top).
	CapacityBytes int
	// Banks divides the capacity into independent banks.
	Banks int
	// Ports is the port count per bank.
	Ports int
	// DataWordBits is the logical access width.
	DataWordBits int
}

// L1Spec64KB returns the paper's 64 kB L1 data cache spec.
func L1Spec64KB() CacheSpec {
	return CacheSpec{Name: "64kB L1", CapacityBytes: 64 << 10, Banks: 1, Ports: 2, DataWordBits: 64}
}

// L2Spec4MB returns the paper's 4 MB L2 cache spec.
func L2Spec4MB() CacheSpec {
	return CacheSpec{Name: "4MB L2", CapacityBytes: 4 << 20, Banks: 8, Ports: 1, DataWordBits: 256}
}

// L2Spec16MB returns the fat CMP's 16 MB L2 spec (yield studies).
func L2Spec16MB() CacheSpec {
	return CacheSpec{Name: "16MB L2", CapacityBytes: 16 << 20, Banks: 8, Ports: 1, DataWordBits: 256}
}

// CodedCacheCost is the modelled cost of one cache bank protected by a
// per-word code, plus the coding logic.
type CodedCacheCost struct {
	// Scheme names the code + interleave combination.
	Scheme string
	// Array is the SRAM bank cost (the wider, check-bit-carrying array).
	Array Metrics
	// CodeStorageFrac is check bits / data bits (plus vertical parity
	// rows when present).
	CodeStorageFrac float64
	// LogicEnergyPJ is the syndrome-generation energy per access.
	LogicEnergyPJ float64
	// SyndromeDelayNS is the check latency appended to a read.
	SyndromeDelayNS float64
	// AccessEnergyPJ is array + logic energy for one access.
	AccessEnergyPJ float64
	// TotalDelayNS is array + syndrome check latency.
	TotalDelayNS float64
}

// CodedCache models spec protected by the given code at the given
// physical interleave degree, exploring the bank organisation under obj.
// verticalRows > 0 adds that many parity rows per bank (the 2D vertical
// code) to the storage accounting.
func CodedCache(t Tech, spec CacheSpec, code ecc.Spec, interleave int, verticalRows int, obj Objective) (CodedCacheCost, error) {
	if spec.DataWordBits != code.DataBits {
		return CodedCacheCost{}, fmt.Errorf("vlsi: cache word %d != code word %d", spec.DataWordBits, code.DataBits)
	}
	cw := code.DataBits + code.CheckBits
	dataBitsPerBank := spec.CapacityBytes * 8 / spec.Banks
	bankBits := dataBitsPerBank * cw / code.DataBits
	p := ArrayParams{
		Bits:       bankBits,
		AccessBits: cw,
		Interleave: interleave,
		Ports:      spec.Ports,
	}
	m, err := Explore(t, p, obj)
	if err != nil {
		return CodedCacheCost{}, err
	}
	logicFJ := float64(code.XORGateCount()) * t.EXorGate
	synNS := float64(code.SyndromeDepth()) * t.TGate

	storage := float64(code.CheckBits) / float64(code.DataBits)
	if verticalRows > 0 {
		// Vertical parity rows span physical rows of the bank.
		totalCols := interleave * cw * m.Org.ColMult
		totalRows := bankBits / totalCols
		storage += float64(verticalRows) / float64(totalRows) * float64(cw) / float64(code.DataBits)
	}

	return CodedCacheCost{
		Scheme:          fmt.Sprintf("%s+Intv%d", code.Name, interleave),
		Array:           m,
		CodeStorageFrac: storage,
		LogicEnergyPJ:   logicFJ / 1000,
		SyndromeDelayNS: synNS,
		AccessEnergyPJ:  m.EnergyPJ + logicFJ/1000,
		TotalDelayNS:    m.DelayNS + synNS,
	}, nil
}

// InterleaveSweep reproduces the Fig. 2 experiment: normalised read
// energy of the cache as the interleave degree sweeps 1..maxDegree
// under one objective. The result is indexed by log2(degree) and
// normalised to degree 1.
func InterleaveSweep(t Tech, spec CacheSpec, code ecc.Spec, maxDegree int, obj Objective) ([]float64, error) {
	var out []float64
	var base float64
	for d := 1; d <= maxDegree; d *= 2 {
		c, err := CodedCache(t, spec, code, d, 0, obj)
		if err != nil {
			return nil, err
		}
		if d == 1 {
			base = c.Array.EnergyPJ
		}
		out = append(out, c.Array.EnergyPJ/base)
	}
	return out, nil
}
