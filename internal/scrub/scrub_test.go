package scrub

import (
	"math/rand"
	"testing"
)

func TestModelValidate(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Fatal("rows=0 accepted")
	}
	bad = m
	bad.Horizontal = "CRC32"
	if bad.Validate() == nil {
		t.Fatal("unknown code accepted")
	}
	bad = m
	bad.FITPerMb = -1
	if bad.Validate() == nil {
		t.Fatal("negative FIT accepted")
	}
}

func TestEventRateScalesWithFIT(t *testing.T) {
	m := DefaultModel()
	r1 := m.EventRatePerHour()
	m.FITPerMb *= 10
	if r10 := m.EventRatePerHour(); r10 < r1*9.9 || r10 > r1*10.1 {
		t.Fatalf("rate did not scale: %v vs %v", r1, r10)
	}
}

func TestSingleEventAlwaysCorrectable(t *testing.T) {
	// Every footprint in ModernDist (max 8x8) fits the 32x32 coverage:
	// a single event between scrubs never defeats recovery.
	m := DefaultModel()
	rng := rand.New(rand.NewSource(1))
	if p := m.FailureGivenEvents(rng, 1, 30); p != 0 {
		t.Fatalf("P(fail | 1 event) = %v, want 0", p)
	}
}

func TestAccumulationCanDefeatCoverage(t *testing.T) {
	// Many accumulated events eventually overlap into uncorrectable
	// shapes on the small bank (two same-group rows with errors in the
	// same parity groups).
	m := DefaultModel()
	rng := rand.New(rand.NewSource(2))
	p20 := m.FailureGivenEvents(rng, 20, 40)
	if p20 <= 0 {
		t.Skip("20-event accumulation never failed in 40 trials (coverage is strong); acceptable")
	}
	p2 := m.FailureGivenEvents(rng, 2, 40)
	if p2 > p20 {
		t.Fatalf("P(fail|2)=%v > P(fail|20)=%v", p2, p20)
	}
}

func TestAnalyzeMonotoneInInterval(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(3))
	// Inflate the FIT rate so intervals contain meaningful event counts
	// without needing huge trial counts.
	m.FITPerMb = 5e9
	short, err := m.Analyze(rng, 1, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.Analyze(rng, 100, 15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if long.EventsPerInterval <= short.EventsPerInterval {
		t.Fatal("event count not increasing with interval")
	}
	if long.PFailPerInterval < short.PFailPerInterval {
		t.Fatalf("longer interval safer? %v vs %v", long.PFailPerInterval, short.PFailPerInterval)
	}
	if short.PFailPerYear < 0 || short.PFailPerYear > 1 {
		t.Fatalf("probability out of range: %v", short.PFailPerYear)
	}
}

func TestAnalyzeRejectsBadInterval(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(4))
	if _, err := m.Analyze(rng, 0, 5, 2); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSweep(t *testing.T) {
	m := DefaultModel()
	m.FITPerMb = 1e9
	rng := rand.New(rand.NewSource(5))
	reps, err := m.Sweep(rng, []float64{1, 10, 100}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	for _, r := range reps {
		if r.PFailPerInterval < 0 || r.PFailPerInterval > 1 {
			t.Fatalf("bad probability %v", r.PFailPerInterval)
		}
	}
}

func TestRealisticRatesAreTiny(t *testing.T) {
	// At real FIT rates (1000 FIT/Mb) and daily scrubbing, the per-year
	// accumulation failure probability of one bank is negligible — the
	// paper's premise that "errors are very rare, on the order of one
	// every few days" for whole caches.
	m := DefaultModel()
	rng := rand.New(rand.NewSource(6))
	rep, err := m.Analyze(rng, 24, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventsPerInterval > 1e-5 {
		t.Fatalf("events/interval = %v for an 8kB bank?", rep.EventsPerInterval)
	}
	if rep.PFailPerYear > 1e-4 {
		t.Fatalf("per-year failure %v too high", rep.PFailPerYear)
	}
}
