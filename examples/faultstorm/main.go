// Faultstorm: subject three protection schemes to an accelerated
// soft-error campaign — a mix of single-bit and multi-bit upsets whose
// footprints follow a nanometre-node distribution — and compare how
// much data each scheme loses. This is the motivating scenario of the
// paper's introduction: as multi-bit upsets grow, conventional
// per-word protection stops being enough.
package main

import (
	"fmt"
	"math/rand"

	"twodcache/internal/ecc"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

const events = 400

func main() {
	oec, err := ecc.NewOECNED(64)
	if err != nil {
		panic(err)
	}
	schemes := []fault.Scheme{
		fault.ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: ecc.MustSECDED(64)},
		fault.ConventionalScheme{Rows: 256, WordsPerRow: 4, Code: oec},
		fault.TwoDScheme{Cfg: twod.Config{
			Rows: 256, WordsPerRow: 4,
			Horizontal: ecc.MustEDC(64, 8), VerticalGroups: 32,
		}},
	}
	dist := fault.ModernDist()
	fmt.Printf("soft-error storm: %d events, footprint mix %v\n\n", events, dist.Sizes)
	fmt.Printf("%-22s %10s %10s %8s\n", "scheme", "survived", "data loss", "storage")

	for _, s := range schemes {
		rng := rand.New(rand.NewSource(7))
		survived, lost := 0, 0
		for e := 0; e < events; e++ {
			// Each event strikes a freshly scrubbed array (the paper's
			// premise: error events are days apart, recovery is fast).
			inst := s.New(rng)
			tg := inst.Target()
			fault.Apply(tg, fault.SoftEvent(rng, tg.Rows(), tg.RowBits(), dist))
			if inst.Repair() {
				survived++
			} else {
				lost++
			}
		}
		fmt.Printf("%-22s %9.1f%% %9.1f%% %7.1f%%\n",
			s.Name(),
			100*float64(survived)/events,
			100*float64(lost)/events,
			100*s.StorageOverhead())
	}
	fmt.Println("\n2D coding survives every event the footprint distribution can produce,")
	fmt.Println("at a storage cost close to SECDED and far below OECNED.")
}
