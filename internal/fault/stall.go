package fault

import (
	"context"
	"sync/atomic"
	"time"
)

// Stall is a chaos-injectable stall point for recovery paths: the
// software analogue of a wedged BIST controller or a recovery process
// that stopped making progress. A subsystem plants a *Stall at the spot
// it wants to be able to wedge (the resilience engine calls Hit at the
// entry of its full-2D rung) and tests or chaos drivers arm it with a
// duration. Unarmed — or nil — a Stall costs one atomic load and never
// blocks, so production paths can call Hit unconditionally.
//
// Hit honours context cancellation: a recovery watchdog that
// force-escalates a stuck repair cancels the repair's context, which
// releases the stall immediately instead of waiting the armed duration
// out. That is exactly the mechanism cmd/soak's chaos mode exercises.
type Stall struct {
	d     atomic.Int64 // armed stall length in nanoseconds; 0 = disarmed
	fired atomic.Uint64
}

// Arm sets the stall duration applied by subsequent Hit calls.
// Non-positive durations disarm.
func (s *Stall) Arm(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.d.Store(int64(d))
}

// Disarm turns the stall point back into a no-op.
func (s *Stall) Disarm() { s.d.Store(0) }

// Fired returns how many Hit calls actually stalled.
func (s *Stall) Fired() uint64 {
	if s == nil {
		return 0
	}
	return s.fired.Load()
}

// Hit blocks for the armed duration or until ctx is cancelled,
// whichever comes first. A nil receiver, a disarmed stall, or a nil ctx
// with no armed duration all return immediately.
func (s *Stall) Hit(ctx context.Context) {
	if s == nil {
		return
	}
	d := time.Duration(s.d.Load())
	if d <= 0 {
		return
	}
	s.fired.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	if ctx == nil {
		<-t.C
		return
	}
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
