package cache

import (
	"math/rand"
	"testing"
)

func cfg64k() Config {
	return Config{
		Name: "L1D", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2,
		Banks: 1, PortsPerBank: 2, HitLatency: 2, MSHRs: 8,
	}
}

func TestConfigValidation(t *testing.T) {
	good := cfg64k()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(c *Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.LineBytes = 60 },
		func(c *Config) { c.Assoc = 3 }, // 64k/(64*3) not integral
		func(c *Config) { c.Banks = 3 },
		func(c *Config) { c.PortsPerBank = 0 },
		func(c *Config) { c.MSHRs = 0 },
	}
	for i, mutate := range bads {
		c := cfg64k()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(cfg64k())
	addr := uint64(0x12340)
	if c.Lookup(addr, false) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(addr, false)
	if !c.Lookup(addr, false) {
		t.Fatal("post-fill lookup missed")
	}
	// Same line, different offset.
	if !c.Lookup(addr+63-(addr%64), false) {
		t.Fatal("same-line offset missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way: fill three conflicting lines; the least recently used one
	// must be the victim.
	c := MustNew(cfg64k())
	setStride := uint64(64 << 9) // sets = 64k/(64*2) = 512; stride = 512*64
	a, b, d := uint64(0x40), 0x40+setStride, 0x40+2*setStride
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a, false) // touch a => b is LRU
	ev := c.Fill(d, false)
	if !ev.Valid {
		t.Fatal("no eviction on full set")
	}
	if c.LineAddr(ev.Addr) != c.LineAddr(b) {
		t.Fatalf("evicted %#x, want %#x", ev.Addr, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := MustNew(cfg64k())
	setStride := uint64(64 << 9)
	a := uint64(0x1000)
	c.Fill(a, false)
	c.Lookup(a, true) // store => dirty
	c.Fill(a+setStride, false)
	ev := c.Fill(a+2*setStride, false)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("eviction = %+v, want dirty", ev)
	}
	if c.LineAddr(ev.Addr) != c.LineAddr(a) {
		t.Fatalf("evicted %#x, want %#x", ev.Addr, a)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestFillDirtyAndClean(t *testing.T) {
	c := MustNew(cfg64k())
	a := uint64(0x2000)
	c.Fill(a, true) // write-allocate store
	setStride := uint64(64 << 9)
	c.Fill(a+setStride, false)
	c.CleanLine(a) // writeback completed
	ev := c.Fill(a+2*setStride, false)
	if ev.Dirty {
		t.Fatal("cleaned line still evicted dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(cfg64k())
	a := uint64(0x3000)
	c.Fill(a, true)
	present, dirty := c.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("invalidate = %v %v", present, dirty)
	}
	if c.Contains(a) {
		t.Fatal("line survived invalidation")
	}
	present, _ = c.Invalidate(a)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestEvictionAddressRoundTrip(t *testing.T) {
	// The reconstructed eviction address must map to the same set and
	// tag as the original.
	c := MustNew(cfg64k())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(1 << 30))
		c.Fill(addr, false)
	}
	// Force evictions and verify they re-fill into the same set.
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1 << 30))
		ev := c.Fill(addr, false)
		if ev.Valid {
			if c.Contains(ev.Addr) {
				t.Fatal("evicted line reported still present")
			}
			c.Fill(ev.Addr, false)
			if !c.Contains(ev.Addr) {
				t.Fatal("refill of evicted address failed")
			}
		}
	}
}

func TestBankMapping(t *testing.T) {
	cfg := cfg64k()
	cfg.Banks = 8
	c := MustNew(cfg)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		b := c.Bank(uint64(i * 64))
		if b < 0 || b >= 8 {
			t.Fatalf("bank %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d banks used", len(seen))
	}
}

func TestPorts(t *testing.T) {
	p := NewPorts(2, 2)
	p.NewCycle()
	if !p.Take(0) || !p.Take(0) {
		t.Fatal("two slots should be available")
	}
	if p.Take(0) {
		t.Fatal("third slot granted")
	}
	if !p.Idle(1) || !p.Take(1) {
		t.Fatal("bank 1 should be free")
	}
	p.NewCycle()
	if !p.Take(0) {
		t.Fatal("slot not reset on new cycle")
	}
	if p.Claimed() != 4 {
		t.Fatalf("claimed = %d", p.Claimed())
	}
}

func TestMSHRFile(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.Allocate(100, 1) || !m.Allocate(200, 2) {
		t.Fatal("allocation failed")
	}
	if !m.Full() {
		t.Fatal("file should be full")
	}
	// Merge into existing entry still works when full.
	if !m.Allocate(100, 3) {
		t.Fatal("merge rejected")
	}
	if m.Allocate(300, 4) {
		t.Fatal("over-allocation accepted")
	}
	if !m.Lookup(100) || m.Lookup(300) {
		t.Fatal("lookup wrong")
	}
	ws := m.Complete(100)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 3 {
		t.Fatalf("waiters = %v", ws)
	}
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", m.Outstanding())
	}
}
