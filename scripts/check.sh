#!/bin/sh
# check.sh — the tier-1 verify loop, `make check`-equivalent.
#
#   ./scripts/check.sh          # fmt + vet + build + test + race on hardened packages
#   ./scripts/check.sh -full    # additionally race-test every package
#
# The race pass covers the packages with concurrent hot paths (banked
# pcache locking, the resilience engine/scrubber, atomic twod stats) and
# the kernel layer they are built on (bitvec word views, ecc scratch
# pools); -full extends it to the whole module.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt_out" >&2
    exit 1
fi
echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test ./..."
go test ./...
if [ "${1:-}" = "-full" ]; then
    echo "== go test -race ./... (full)"
    go test -race ./...
else
    echo "== go test -race (concurrency-hardened packages + kernel layer)"
    go test -race ./internal/bitvec/ ./internal/ecc/ ./internal/twod/ ./internal/pcache/ ./internal/resilience/
fi
echo "check: OK"
