package gf2

import (
	"math/bits"
	"strings"
)

// Poly is a polynomial over GF(2), stored as packed coefficient bits:
// bit i of the word slice is the coefficient of x^i. The zero polynomial
// is represented by an empty or all-zero slice.
type Poly struct {
	w []uint64
}

// PolyFromBits creates a polynomial with the given coefficient mask
// (bit i of mask = coefficient of x^i).
func PolyFromBits(mask uint64) Poly {
	return Poly{w: []uint64{mask}}.norm()
}

// PolyOne returns the constant polynomial 1.
func PolyOne() Poly { return PolyFromBits(1) }

// PolyX returns the monomial x^k.
func PolyX(k int) Poly {
	p := Poly{w: make([]uint64, k/64+1)}
	p.w[k/64] = 1 << uint(k%64)
	return p
}

func (p Poly) norm() Poly {
	n := len(p.w)
	for n > 0 && p.w[n-1] == 0 {
		n--
	}
	return Poly{w: p.w[:n]}
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.norm().w) == 0 }

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	q := p.norm()
	if len(q.w) == 0 {
		return -1
	}
	top := q.w[len(q.w)-1]
	return (len(q.w)-1)*64 + 63 - bits.LeadingZeros64(top)
}

// Coeff returns the coefficient of x^i (0 or 1).
func (p Poly) Coeff(i int) int {
	if i < 0 || i/64 >= len(p.w) {
		return 0
	}
	return int(p.w[i/64]>>uint(i%64)) & 1
}

// setCoeff returns p with the coefficient of x^i XOR-ed with 1.
func (p Poly) flipCoeff(i int) Poly {
	need := i/64 + 1
	w := make([]uint64, max(need, len(p.w)))
	copy(w, p.w)
	w[i/64] ^= 1 << uint(i%64)
	return Poly{w: w}.norm()
}

// Add returns p + q (XOR of coefficients).
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.w), len(q.w))
	w := make([]uint64, n)
	copy(w, p.w)
	for i, x := range q.w {
		w[i] ^= x
	}
	return Poly{w: w}.norm()
}

// Mul returns the product p*q over GF(2).
func (p Poly) Mul(q Poly) Poly {
	p, q = p.norm(), q.norm()
	if len(p.w) == 0 || len(q.w) == 0 {
		return Poly{}
	}
	out := Poly{w: make([]uint64, len(p.w)+len(q.w))}
	for i := 0; i <= p.Degree(); i++ {
		if p.Coeff(i) == 1 {
			out = out.addShifted(q, i)
		}
	}
	return out.norm()
}

func (p Poly) addShifted(q Poly, shift int) Poly {
	deg := q.Degree()
	need := (deg+shift)/64 + 1
	w := make([]uint64, max(need, len(p.w)))
	copy(w, p.w)
	wordShift, bitShift := shift/64, uint(shift%64)
	for i, x := range q.w {
		if x == 0 {
			continue
		}
		w[i+wordShift] ^= x << bitShift
		if bitShift != 0 && i+wordShift+1 < len(w) {
			w[i+wordShift+1] ^= x >> (64 - bitShift)
		}
	}
	return Poly{w: w}
}

// Mod returns p mod q. It panics if q is zero.
func (p Poly) Mod(q Poly) Poly {
	q = q.norm()
	if q.IsZero() {
		panic("gf2: polynomial modulo by zero")
	}
	r := Poly{w: append([]uint64(nil), p.w...)}.norm()
	dq := q.Degree()
	for {
		dr := r.Degree()
		if dr < dq {
			return r
		}
		r = r.addShifted(q, dr-dq).norm()
	}
}

// DivMod returns the quotient and remainder of p / q.
func (p Poly) DivMod(q Poly) (quot, rem Poly) {
	q = q.norm()
	if q.IsZero() {
		panic("gf2: polynomial division by zero")
	}
	rem = Poly{w: append([]uint64(nil), p.w...)}.norm()
	quot = Poly{}
	dq := q.Degree()
	for {
		dr := rem.Degree()
		if dr < dq {
			return quot, rem
		}
		quot = quot.flipCoeff(dr - dq)
		rem = rem.addShifted(q, dr-dq).norm()
	}
}

// Equal reports whether p and q are the same polynomial.
func (p Poly) Equal(q Poly) bool {
	a, b := p.norm(), q.norm()
	if len(a.w) != len(b.w) {
		return false
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			return false
		}
	}
	return true
}

// String renders the polynomial in conventional form, e.g. "x^3+x+1".
func (p Poly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 1 {
			switch i {
			case 0:
				terms = append(terms, "1")
			case 1:
				terms = append(terms, "x")
			default:
				terms = append(terms, "x^"+itoa(i))
			}
		}
	}
	return strings.Join(terms, "+")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// MinimalPoly returns the minimal polynomial over GF(2) of alpha^i in f:
// the product of (x - alpha^(i*2^j)) over the cyclotomic coset of i.
func MinimalPoly(f *Field, i int) Poly {
	n := f.N()
	i %= n
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod n.
	coset := []int{}
	seen := map[int]bool{}
	for j := i; !seen[j]; j = (2 * j) % n {
		seen[j] = true
		coset = append(coset, j)
	}
	// Multiply out prod (x + alpha^j) using GF(2^m) coefficients, then
	// verify the result has binary coefficients (it must, by theory).
	coeffs := []uint16{1} // coeffs[k] multiplies x^k; start with poly "1"
	for _, j := range coset {
		root := f.Exp(j)
		next := make([]uint16, len(coeffs)+1)
		for k, c := range coeffs {
			next[k+1] ^= c            // x * c x^k
			next[k] ^= f.Mul(c, root) // root * c x^k
		}
		coeffs = next
	}
	p := Poly{}
	for k, c := range coeffs {
		switch c {
		case 0:
		case 1:
			p = p.flipCoeff(k)
		default:
			panic("gf2: minimal polynomial has non-binary coefficient")
		}
	}
	return p
}

// Lcm returns the least common multiple of p and q over GF(2).
func Lcm(p, q Poly) Poly {
	g := Gcd(p, q)
	quot, _ := p.DivMod(g)
	return quot.Mul(q)
}

// Gcd returns the greatest common divisor of p and q over GF(2).
func Gcd(p, q Poly) Poly {
	a, b := p.norm(), q.norm()
	for !b.IsZero() {
		a, b = b, a.Mod(b)
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
