package cluster

import (
	"context"
	"time"
)

// repairTimeout bounds one repair copy (read from a fresh replica plus
// write to the stale one) so a wedged replica cannot pin a stripe lock.
const repairTimeout = 250 * time.Millisecond

// repairLoop periodically drains every endpoint's missed set by
// copying the authoritative value from a fresh replica. Repair runs
// under the same per-addr stripe locks writes hold, so a repair can
// never interleave with a newer write and resurrect an old value — the
// classic read-repair hazard.
func (c *Client) repairLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.RepairInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.repairPass()
		}
	}
}

// repairPass repairs up to RepairBatch addrs per endpoint.
func (c *Client) repairPass() {
	for _, ep := range c.eps {
		batch := ep.missedBatch(c.cfg.RepairBatch)
		for addr, n := range batch {
			select {
			case <-c.done:
				return
			default:
			}
			c.repairAddr(ep, addr, n)
		}
	}
}

// repairAddr copies addr from a fresh replica onto stale. Failures
// leave addr in the missed set for the next pass; only a confirmed
// write clears it.
func (c *Client) repairAddr(stale *endpoint, addr uint64, n int) {
	st := c.stripe(addr)
	st.Lock()
	defer st.Unlock()

	// A write may have raced the batch copy and already refreshed this
	// replica; repairing again would be wasted but harmless. Skip.
	stale.mu.Lock()
	_, still := stale.missed[addr]
	conn := stale.conn
	stale.mu.Unlock()
	if !still || conn == nil {
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), repairTimeout)
	defer cancel()
	data, err := c.readFreshExcluding(ctx, stale, addr, n)
	if err != nil {
		return
	}
	if err := conn.WriteCtx(ctx, addr, data); err != nil {
		if isTransportDead(err) {
			stale.markDown(conn)
		}
		return
	}
	stale.clearMissed(addr)
	c.readRepairs.Inc()
}

// readFreshExcluding reads addr from any fresh endpoint other than
// skip — a plain single-attempt read (no hedging: repair is background
// work and must not compete with foreground traffic for extra replica
// slots).
func (c *Client) readFreshExcluding(ctx context.Context, skip *endpoint, addr uint64, n int) ([]byte, error) {
	var lastErr error = ErrNoReplicas
	for _, ep := range c.eps {
		if ep == skip {
			continue
		}
		conn, fresh := ep.freshFor(addr)
		if !fresh {
			continue
		}
		ok, probe := ep.admit()
		if !ok {
			continue
		}
		data, err := conn.ReadCtx(ctx, addr, n)
		switch {
		case err == nil:
			ep.brk.Record(probe, true)
			return data, nil
		case ctxError(ctx, err):
			ep.brk.Release(probe)
		default:
			ep.brk.Record(probe, false)
			if isTransportDead(err) {
				ep.markDown(conn)
			}
		}
		lastErr = err
	}
	return nil, lastErr
}
