package twod

import (
	"testing"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
	"twodcache/internal/obs"
)

// TestHotPathAllocFree pins the per-access allocation count of the
// word-kernel data path to zero: fetching a clean word (ReadUint64 and
// the concurrent TryReadUint64), writing one (WriteUint64), and the
// bare syndrome probe must not touch the heap. This is the contract the
// pcache hit path is built on.
func TestHotPathAllocFree(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately drops items under the race detector,
		// so the pooled TryRead path allocates by design there. The
		// non-race tier-1 run enforces the zero-alloc contract.
		t.Skip("allocation counts are not meaningful under -race")
	}
	for _, tc := range []struct {
		name  string
		horiz ecc.HorizontalCode
	}{
		{"EDC8", ecc.MustEDC(64, 8)},
		{"EDC16", ecc.MustEDC(64, 16)},
		{"SECDED", ecc.MustSECDED(64)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := MustArray(Config{
				Rows:           64,
				WordsPerRow:    8,
				Horizontal:     tc.horiz,
				VerticalGroups: 16,
			})
			// The zero-alloc contract must survive full instrumentation:
			// a registered registry and an installed (no-op) event sink.
			reg := obs.NewRegistry()
			a.RegisterMetrics(reg, "twod_"+tc.name)
			a.SetEventSink(obs.NopSink{}, "data")
			for w := 0; w < 8; w++ {
				a.WriteUint64(3, w, 0xA5A5_5A5A_DEAD_BEEF+uint64(w))
			}
			if got := testing.AllocsPerRun(200, func() {
				if _, st := a.ReadUint64(3, 5); st != ReadClean {
					t.Fatalf("unexpected status %v", st)
				}
			}); got != 0 {
				t.Errorf("ReadUint64 (clean) allocates %.1f/op", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				if _, ok := a.TryReadUint64(3, 5); !ok {
					t.Fatal("TryReadUint64 missed a clean word")
				}
			}); got != 0 {
				t.Errorf("TryReadUint64 (clean) allocates %.1f/op", got)
			}
			var x uint64
			if got := testing.AllocsPerRun(200, func() {
				x++
				if st := a.WriteUint64(3, 5, x); st != ReadClean {
					t.Fatalf("unexpected status %v", st)
				}
			}); got != 0 {
				t.Errorf("WriteUint64 allocates %.1f/op", got)
			}
			if got := testing.AllocsPerRun(200, func() {
				if a.syndromeAt(3, 5) != 0 {
					t.Fatal("clean word has nonzero syndrome")
				}
			}); got != 0 {
				t.Errorf("syndromeAt allocates %.1f/op", got)
			}
		})
	}
}

// TestKernelAPIAgreesWithVectorAPI drives the uint64 fast paths and the
// legacy Vector paths against each other on the same array.
func TestKernelAPIAgreesWithVectorAPI(t *testing.T) {
	a := MustArray(Config{
		Rows:           32,
		WordsPerRow:    4,
		Horizontal:     ecc.MustSECDED(64),
		VerticalGroups: 8,
	})
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < 4; w++ {
			v := uint64(r)<<32 | uint64(w)<<8 | 0x17
			if r%2 == 0 {
				a.WriteUint64(r, w, v)
			} else {
				a.Write(r, w, bitvec.FromUint64(v, 64))
			}
		}
	}
	for r := 0; r < a.Rows(); r++ {
		for w := 0; w < 4; w++ {
			want := uint64(r)<<32 | uint64(w)<<8 | 0x17
			got, st := a.ReadUint64(r, w)
			if st != ReadClean || got != want {
				t.Fatalf("ReadUint64(%d,%d) = %#x, %v; want %#x clean", r, w, got, st, want)
			}
			vec, st := a.Read(r, w)
			if st != ReadClean || vec.Uint64() != want {
				t.Fatalf("Read(%d,%d) = %#x, %v; want %#x clean", r, w, vec.Uint64(), st, want)
			}
			tv, ok := a.TryReadUint64(r, w)
			if !ok || tv != want {
				t.Fatalf("TryReadUint64(%d,%d) = %#x, %v", r, w, tv, ok)
			}
		}
	}
	if rep := a.VerifyIntegrity(); !rep.Clean() {
		t.Fatalf("array inconsistent after mixed-API traffic: %+v", rep)
	}
}
