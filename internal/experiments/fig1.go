package experiments

import (
	"twodcache/internal/ecc"
	"twodcache/internal/vlsi"
)

var fig1Schemes = []string{"EDC8", "SECDED", "DECTED", "QECPED", "OECNED"}

// Fig1b reproduces Fig. 1(b): extra memory storage of each code for
// 64-bit and 256-bit words.
func Fig1b() Table {
	t := Table{
		ID:     "fig1b",
		Title:  "Fig. 1(b): extra memory storage of EDC/ECC codes",
		Header: []string{"code", "64b word", "256b word"},
	}
	for _, name := range fig1Schemes {
		s64, err := ecc.SpecByName(name, 64)
		if err != nil {
			panic(err)
		}
		s256, err := ecc.SpecByName(name, 256)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{name, pct(s64.StorageOverhead()), pct(s256.StorageOverhead())})
	}
	return t
}

// Fig1c reproduces Fig. 1(c): extra energy per read of each code on a
// 64 kB array (64-bit words) and a 4 MB array (256-bit words), relative
// to the same array without coding logic or check bits.
func Fig1c() Table {
	t := Table{
		ID:     "fig1c",
		Title:  "Fig. 1(c): extra energy per read of EDC/ECC codes",
		Header: []string{"code", "64b word / 64kB array", "256b word / 4MB array"},
		Notes: []string{
			"energy from the Cacti-like internal/vlsi model at 70nm (substitute for modified Cacti 4.0)",
		},
	}
	tech := vlsi.Default70nm()
	base := func(spec vlsi.CacheSpec) float64 {
		// Uncoded reference: zero check bits, no syndrome logic.
		plain := ecc.Spec{Name: "none", DataBits: spec.DataWordBits, CheckBits: 0}
		// CodedCache requires CheckBits>=0; emulate with an EDC of zero
		// cost by computing the array directly.
		c, err := vlsi.CodedCache(tech, spec, plain, 1, 0, vlsi.BalancedOpt)
		if err != nil {
			panic(err)
		}
		return c.AccessEnergyPJ
	}
	l1, l2 := vlsi.L1Spec64KB(), vlsi.L2Spec4MB()
	b1, b2 := base(l1), base(l2)
	for _, name := range fig1Schemes {
		s64, _ := ecc.SpecByName(name, 64)
		s256, _ := ecc.SpecByName(name, 256)
		c1, err := vlsi.CodedCache(tech, l1, s64, 1, 0, vlsi.BalancedOpt)
		if err != nil {
			panic(err)
		}
		c2, err := vlsi.CodedCache(tech, l2, s256, 1, 0, vlsi.BalancedOpt)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			pct(c1.AccessEnergyPJ/b1 - 1),
			pct(c2.AccessEnergyPJ/b2 - 1),
		})
	}
	return t
}
