// Package resilience turns the protected cache into an online,
// self-healing system: the paper's premise is that correction is a
// rare, slow background process decoupled from fast detection (§4,
// Fig. 4(b)), so this package supplies the runtime half — a recovery
// escalation ladder that replaces one-shot recovery, a traffic-aware
// background scrubber, and a health report — so the cache keeps
// serving traffic while faults arrive continuously.
//
// The escalation ladder runs on every detected-uncorrectable (DUE)
// access, cheapest rung first:
//
//  1. retry — re-issue the access; a concurrent scrubber or another
//     client's repair may already have cleared the damage.
//  2. word recovery — targeted horizontal correction of exactly the
//     failed word(s), no array-wide march.
//  3. full 2D recovery — the Fig. 4(b) process over the whole bank.
//  4. graceful degradation — the affected way is decommissioned (its
//     line refetched from backing on the next access; unflushed dirty
//     data is counted as lost), and, if a spare-row budget remains,
//     remapped to a spare via the redundancy allocator and returned to
//     service.
//
// Rung 4 terminates: each pass retires one more way, and a fully
// retired set bypasses the arrays entirely, so the ladder ends in a
// usable, smaller cache rather than an error loop.
package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"twodcache/internal/pcache"
	"twodcache/internal/redundancy"
)

// Config tunes the escalation ladder.
type Config struct {
	// MaxRetries is how many times rung 1 re-issues the access before
	// escalating. Zero selects 1; negative disables the rung.
	MaxRetries int
	// SpareRows is the spare-row budget for remapping decommissioned
	// ways back into service (rung 4). Zero disables remapping.
	SpareRows int
	// Clock overrides the time source (tests). Nil selects time.Now.
	Clock func() time.Time
}

// Engine wraps a protected cache with the recovery escalation ladder.
// All methods are safe for concurrent use.
type Engine struct {
	cache *pcache.Cache
	cfg   Config
	clock func() time.Time

	// remap state: the accumulated faulty way-rows presented to the
	// redundancy allocator, and which ways already consumed their one
	// remap (a second failure means the spare itself is bad).
	mu           sync.Mutex
	faultyRows   []redundancy.Fault
	remappedOnce map[int]bool
	scrubber     *Scrubber

	dues           atomic.Uint64
	retries        atomic.Uint64
	retryHits      atomic.Uint64
	wordAttempts   atomic.Uint64
	wordHits       atomic.Uint64
	fullAttempts   atomic.Uint64
	fullHits       atomic.Uint64
	decommissions  atomic.Uint64
	remaps         atomic.Uint64
	exhausted      atomic.Uint64
	repairs        atomic.Uint64
	repairDuration atomic.Int64 // nanoseconds across all ladder runs
}

// New builds an engine over the cache.
func New(c *pcache.Cache, cfg Config) *Engine {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 1
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Engine{
		cache:        c,
		cfg:          cfg,
		clock:        clock,
		remappedOnce: map[int]bool{},
	}
}

// Cache returns the underlying protected cache (for fault injection,
// statistics, and direct access).
func (e *Engine) Cache() *pcache.Cache { return e.cache }

// Read serves n bytes at addr, running the escalation ladder on any
// detected-uncorrectable error. An error return means even graceful
// degradation could not produce trustworthy data.
func (e *Engine) Read(addr uint64, n int) (out []byte, err error) {
	out, err = e.cache.Read(addr, n)
	if err == nil {
		return out, nil
	}
	err = e.ladder(err, func() error {
		var e2 error
		out, e2 = e.cache.Read(addr, n)
		return e2
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Write stores bytes at addr, running the escalation ladder on any
// detected-uncorrectable error.
func (e *Engine) Write(addr uint64, data []byte) error {
	err := e.cache.Write(addr, data)
	if err == nil {
		return nil
	}
	return e.ladder(err, func() error { return e.cache.Write(addr, data) })
}

// Flush writes all dirty lines back, escalating on DUEs until the
// flush completes.
func (e *Engine) Flush() error {
	err := e.cache.Flush()
	if err == nil {
		return nil
	}
	return e.ladder(err, func() error { return e.cache.Flush() })
}

// ladder escalates a located DUE rung by rung, re-issuing attempt()
// after each rung until it succeeds or the degrade rung exhausts the
// set's ways. err must be the failing attempt's error.
func (e *Engine) ladder(err error, attempt func() error) error {
	var ue *pcache.UncorrectableError
	if !errors.As(err, &ue) {
		return err // not a machine check (span error, ...): no ladder
	}
	e.dues.Add(1)
	start := e.clock()
	defer func() {
		e.repairs.Add(1)
		e.repairDuration.Add(int64(e.clock().Sub(start)))
	}()

	// again re-issues the access; ok means done, a non-nil herr is a
	// hard (non-DUE) failure; otherwise ue is rebound to the new fault.
	again := func() (ok bool, herr error) {
		err2 := attempt()
		if err2 == nil {
			return true, nil
		}
		var u2 *pcache.UncorrectableError
		if !errors.As(err2, &u2) {
			return false, err2
		}
		ue = u2
		return false, nil
	}

	// Rung 1: retry.
	for i := 0; i < e.cfg.MaxRetries; i++ {
		e.retries.Add(1)
		ok, herr := again()
		if herr != nil {
			return herr
		}
		if ok {
			e.retryHits.Add(1)
			return nil
		}
	}

	// Rung 2: targeted word-level recovery.
	e.wordAttempts.Add(1)
	if e.cache.RecoverWord(ue.Array, ue.Set, ue.Way) {
		ok, herr := again()
		if herr != nil {
			return herr
		}
		if ok {
			e.wordHits.Add(1)
			return nil
		}
	}

	// Rung 3: full 2D recovery over the bank.
	e.fullAttempts.Add(1)
	if e.cache.RecoverSetArrays(ue.Set) {
		ok, herr := again()
		if herr != nil {
			return herr
		}
		if ok {
			e.fullHits.Add(1)
			return nil
		}
	}

	// Rung 4: graceful degradation. Each pass retires the named way;
	// once a whole set is retired its accesses bypass the arrays, so
	// this terminates. The bound is a backstop against a pathological
	// fault source that keeps naming fresh locations.
	maxDegrades := e.cache.Config().Ways + 2
	for i := 0; i < maxDegrades; i++ {
		e.Degrade(ue.Set, ue.Way)
		ok, herr := again()
		if herr != nil {
			return herr
		}
		if ok {
			return nil
		}
	}
	e.exhausted.Add(1)
	return &pcache.UncorrectableError{Array: ue.Array, Set: ue.Set, Way: ue.Way}
}

// Degrade is rung 4 as a direct entry point (the scrubber uses it for
// sweep victims): decommission the way, count lost dirty data, and try
// to remap it to a spare row.
func (e *Engine) Degrade(set, way int) (lostDirty bool) {
	lostDirty = e.cache.Decommission(set, way)
	e.decommissions.Add(1)
	e.tryRemap(set, way)
	return lostDirty
}

// tryRemap consults the spare-row budget: the faulty data row backing
// (set, way) joins the accumulated fault list and a repair allocation
// runs over the way-row space; if the plan covers every fault, the way
// is remapped to a spare and returned to service. A way whose remap
// fails again stays retired — its spare is presumed bad.
func (e *Engine) tryRemap(set, way int) {
	if e.cfg.SpareRows <= 0 {
		return
	}
	cc := e.cache.Config()
	key := set*cc.Ways + way
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.remappedOnce[key] {
		return
	}
	faults := append(append([]redundancy.Fault{}, e.faultyRows...),
		redundancy.Fault{Row: key})
	plan, err := redundancy.Allocate(redundancy.Config{
		Rows:      cc.Sets * cc.Ways,
		Cols:      cc.LineBytes * 8,
		SpareRows: e.cfg.SpareRows,
	}, faults)
	if err != nil || !plan.Repairable {
		return // budget exhausted: the way stays retired
	}
	e.faultyRows = faults
	e.remappedOnce[key] = true
	e.cache.Reenable(set, way)
	e.remaps.Add(1)
}

// Report is the health API: everything an operator needs to judge
// whether the cache is keeping up with its fault environment.
type Report struct {
	// Accesses is the total Read/Write traffic observed.
	Accesses uint64
	// DUEs counts detected-uncorrectable events that entered the
	// ladder; DUERate is DUEs per access.
	DUEs    uint64
	DUERate float64

	// Per-rung escalation counts: attempts and the accesses each rung
	// rescued.
	Retries, RetrySuccesses      uint64
	WordAttempts, WordRecoveries uint64
	FullAttempts, FullRecoveries uint64
	Decommissions                uint64
	Remaps                       uint64
	// Exhausted counts ladder runs that failed even after degradation
	// (zero in a healthy system).
	Exhausted uint64

	// DirtyLinesLost counts decommissions that discarded unflushed
	// dirty data — the accounted data-loss events.
	DirtyLinesLost uint64

	// DisabledWays/TotalWays give the decommissioned capacity;
	// CapacityLostPct is the same as a percentage.
	DisabledWays, TotalWays int
	CapacityLostPct         float64

	// MTTR is the mean time from DUE detection to ladder completion.
	MTTR time.Duration

	// Scrubber activity (zero if no scrubber is attached).
	ScrubPasses, ScrubBackoffs, ScrubVictims uint64

	// Cache is the raw cache counter snapshot.
	Cache pcache.Stats
}

// Report snapshots the engine's health.
func (e *Engine) Report() Report {
	cc := e.cache.Config()
	st := e.cache.Stats()
	total := cc.Sets * cc.Ways
	disabled := e.cache.DisabledWays()
	r := Report{
		Accesses:        e.cache.Accesses(),
		DUEs:            e.dues.Load(),
		Retries:         e.retries.Load(),
		RetrySuccesses:  e.retryHits.Load(),
		WordAttempts:    e.wordAttempts.Load(),
		WordRecoveries:  e.wordHits.Load(),
		FullAttempts:    e.fullAttempts.Load(),
		FullRecoveries:  e.fullHits.Load(),
		Decommissions:   e.decommissions.Load(),
		Remaps:          e.remaps.Load(),
		Exhausted:       e.exhausted.Load(),
		DirtyLinesLost:  st.DirtyLinesLost,
		DisabledWays:    disabled,
		TotalWays:       total,
		CapacityLostPct: 100 * float64(disabled) / float64(total),
		Cache:           st,
	}
	if r.Accesses > 0 {
		r.DUERate = float64(r.DUEs) / float64(r.Accesses)
	}
	if n := e.repairs.Load(); n > 0 {
		r.MTTR = time.Duration(e.repairDuration.Load() / int64(n))
	}
	e.mu.Lock()
	s := e.scrubber
	e.mu.Unlock()
	if s != nil {
		r.ScrubPasses = s.Passes()
		r.ScrubBackoffs = s.Backoffs()
		r.ScrubVictims = s.Victims()
	}
	return r
}
