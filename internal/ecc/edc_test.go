package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"twodcache/internal/bitvec"
)

func TestEDCParams(t *testing.T) {
	e := MustEDC(64, 8)
	if e.Name() != "EDC8" || e.DataBits() != 64 || e.CheckBits() != 8 {
		t.Fatalf("params: %s %d %d", e.Name(), e.DataBits(), e.CheckBits())
	}
	if e.CorrectCapability() != 0 || e.DetectCapability() != 8 {
		t.Fatal("capabilities wrong")
	}
	if _, err := NewEDC(64, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewEDC(8, 16); err == nil {
		t.Fatal("n>k accepted")
	}
}

func TestEDCCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 8, 16, 32} {
		e := MustEDC(64, n)
		for i := 0; i < 20; i++ {
			d := randVec(rng, 64)
			cw := e.Encode(d)
			if res, _ := e.Decode(cw); res != Clean {
				t.Fatalf("EDC%d clean decode failed", n)
			}
			if !e.Data(cw).Equal(d) {
				t.Fatalf("EDC%d data mismatch", n)
			}
		}
	}
}

func TestEDCDetectsContiguousBursts(t *testing.T) {
	// EDCn must detect every contiguous burst of 1..n flipped bits.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 8, 16} {
		e := MustEDC(64, n)
		for trial := 0; trial < 30; trial++ {
			cw := e.Encode(randVec(rng, 64))
			blen := 1 + rng.Intn(n)
			start := rng.Intn(cw.Len() - blen)
			for i := 0; i < blen; i++ {
				cw.Flip(start + i)
			}
			if res, _ := e.Decode(cw); res != Detected {
				t.Fatalf("EDC%d missed a %d-bit burst at %d", n, blen, start)
			}
		}
	}
}

func TestEDCMissesAlignedPairs(t *testing.T) {
	// Two flips n apart fall in the same parity group and cancel: the
	// fundamental limitation that motivates interleaving choice.
	e := MustEDC(64, 8)
	cw := e.Encode(bitvec.New(64))
	cw.Flip(0)
	cw.Flip(8)
	if res, _ := e.Decode(cw); res != Clean {
		t.Fatalf("aligned pair should be invisible to EDC8, got %v", res)
	}
}

func TestEDCSyndromeIdentifiesGroups(t *testing.T) {
	e := MustEDC(64, 8)
	cw := e.Encode(bitvec.New(64))
	cw.Flip(3)  // group 3
	cw.Flip(12) // group 4
	syn := e.Syndrome(cw)
	if !syn.Bit(3) || !syn.Bit(4) || syn.PopCount() != 2 {
		t.Fatalf("syndrome = %s", syn)
	}
}

func TestEDCQuickSingleFlipAlwaysDetected(t *testing.T) {
	e := MustEDC(64, 8)
	prop := func(seed int64, posRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cw := e.Encode(randVec(rng, 64))
		cw.Flip(int(posRaw) % cw.Len())
		res, _ := e.Decode(cw)
		return res == Detected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}
