package twod

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"twodcache/internal/bitvec"
	"twodcache/internal/ecc"
)

// Config parameterises a 2D-protected array.
type Config struct {
	// Rows is the number of data rows.
	Rows int
	// WordsPerRow is the physical bit-interleave degree d.
	WordsPerRow int
	// Horizontal is the per-word code checked on every read (EDCn or
	// SECDED).
	Horizontal ecc.HorizontalCode
	// VerticalGroups is V, the number of interleaved vertical parity
	// rows: data row r accumulates into parity row r mod V. The paper's
	// EDC32 vertical code is V = 32.
	VerticalGroups int
	// AssumeClusteredFaults declares the paper's fault model — errors
	// form contiguous column clusters (manufacturing column failures,
	// particle-strike clusters) — and lets column-mode recovery trust
	// it: suspect columns are pooled across ALL vertical groups and
	// each faulty word is solved over that pool, as in Fig. 4(b). Under
	// that model the solve is sound, and offline coverage campaigns
	// (fault.TwoDScheme, the Fig. 3/4 experiments) enable it to
	// measure the paper's claims. Under arbitrary fault patterns it is
	// forgeable: same-column pairs cancel out of the parity and
	// aliasing columns yield unique-looking wrong solutions that check
	// clean afterwards (see internal/replay/testdata/
	// {cancelpair,crosscluster,hiddenpair}-shrunk.trace). The default
	// (false) is the strict evidence discipline — under detection-only
	// codes a row is repaired from its group mismatch only when it is
	// the group's sole faulty row, and multi-row groups refuse so the
	// loss is escalated and accounted. Online caches (pcache) must
	// leave this false.
	AssumeClusteredFaults bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Horizontal == nil {
		return fmt.Errorf("twod: nil horizontal code")
	}
	if c.Rows <= 0 || c.WordsPerRow <= 0 {
		return fmt.Errorf("twod: invalid geometry rows=%d words/row=%d", c.Rows, c.WordsPerRow)
	}
	if c.VerticalGroups <= 0 || c.VerticalGroups > c.Rows {
		return fmt.Errorf("twod: vertical groups %d out of range [1,%d]", c.VerticalGroups, c.Rows)
	}
	return nil
}

// Stats counts array activity; the CMP simulator and the overhead
// benches consume these. Counters are maintained with atomic adds so
// concurrent readers holding a shared lock (see TryRead) do not race.
type Stats struct {
	// Reads is the number of word read operations.
	Reads uint64
	// Writes is the number of word write operations.
	Writes uint64
	// ExtraReads counts the read-before-write operations issued to
	// update the vertical parity (the paper's ~20% extra accesses).
	ExtraReads uint64
	// InlineCorrections counts single-bit errors repaired by the
	// horizontal SECDED code without entering 2D recovery.
	InlineCorrections uint64
	// Recoveries counts invocations of the 2D recovery process.
	Recoveries uint64
	// RecoveredWords counts words repaired by 2D recovery.
	RecoveredWords uint64
	// Uncorrectable counts recovery attempts that failed (error
	// exceeded the 2D coverage).
	Uncorrectable uint64
}

// ReadStatus reports how a read completed.
type ReadStatus int

const (
	// ReadClean means the horizontal code checked clean.
	ReadClean ReadStatus = iota
	// ReadCorrectedInline means SECDED repaired a single-bit error
	// without invoking 2D recovery.
	ReadCorrectedInline
	// ReadRecovered means 2D recovery ran and repaired the word.
	ReadRecovered
	// ReadUncorrectable means the error exceeded 2D coverage; the
	// returned data is not trustworthy.
	ReadUncorrectable
)

// String names the read status.
func (s ReadStatus) String() string {
	switch s {
	case ReadClean:
		return "clean"
	case ReadCorrectedInline:
		return "corrected-inline"
	case ReadRecovered:
		return "recovered-2d"
	case ReadUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ReadStatus(%d)", int(s))
	}
}

// Array is a memory array protected by 2D error coding. All storage —
// data bits, horizontal check bits, and vertical parity rows — is
// explicit, so fault injection can flip any physical bit and recovery
// must cope exactly as hardware would.
//
// Concurrency contract: Write, Read, Recover and the other mutating
// entry points require external exclusive access (the pcache banks hold
// an exclusive lock around them); they reuse array-owned scratch
// buffers and perform no per-access heap allocation. TryRead and
// TryReadUint64 are the shared-lock fast path: many may run
// concurrently (against each other, never against a writer) and they
// draw scratch from an internal pool instead.
type Array struct {
	cfg     cfgCache
	layout  Layout
	data    *bitvec.Matrix // Rows x RowBits: interleaved codewords
	vpar    *bitvec.Matrix // VerticalGroups x RowBits: parity rows
	stats   Stats
	cwWords int // backing words per codeword scratch

	// residual[g] marks vertical group g as carrying an unattributable
	// parity residue: a word with unrepairable damage was overwritten by
	// the raw-delta discipline, leaving the old (unknown) error pattern
	// in the group's mismatch. Row-mode recovery must refuse to replay a
	// tainted group's mismatch into any row — residues can combine into
	// a code-valid pattern that slips past the per-word plausibility
	// check and forges a clean-looking wrong word. Cleared when the
	// group's parity is rebuilt from clean data (FlushResidualParity, a
	// clean Recover pass). Exclusive-path state: guarded by the same
	// external lock as Write/Recover.
	residual []bool

	// scr holds the exclusive-path scratch: one codeword buffer for the
	// access in flight, one for the old word of the read-before-write
	// delta, and one DataBits-wide staging buffer for encodes.
	scr struct {
		cw   []uint64
		old  []uint64
		data []uint64
	}
	// tryScratch pools codeword buffers for the concurrent TryRead path.
	tryScratch sync.Pool

	// sink, when set, receives recovery and uncorrectable events (see
	// SetEventSink in obs.go). Atomic so installation races no access.
	sink atomic.Pointer[arraySink]
}

// cfgCache embeds Config plus derived values the hot loops need.
type cfgCache struct {
	Config
	dataWords int
}

// NewArray builds a zero-initialised protected array (vertical parity
// of all-zero data is all zero, so the array starts consistent).
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout := Layout{
		Rows:         cfg.Rows,
		WordsPerRow:  cfg.WordsPerRow,
		CodewordBits: ecc.CodewordBits(cfg.Horizontal),
	}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		cfg:      cfgCache{Config: cfg, dataWords: bitvec.WordsFor(cfg.Horizontal.DataBits())},
		layout:   layout,
		data:     bitvec.NewMatrix(cfg.Rows, layout.RowBits()),
		vpar:     bitvec.NewMatrix(cfg.VerticalGroups, layout.RowBits()),
		cwWords:  bitvec.WordsFor(layout.CodewordBits),
		residual: make([]bool, cfg.VerticalGroups),
	}
	a.scr.cw = make([]uint64, a.cwWords)
	a.scr.old = make([]uint64, a.cwWords)
	a.scr.data = make([]uint64, a.cfg.dataWords)
	a.tryScratch.New = func() any {
		buf := make([]uint64, a.cwWords)
		return &buf
	}
	return a, nil
}

// MustArray is NewArray panicking on error.
func MustArray(cfg Config) *Array {
	a, err := NewArray(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg.Config }

// Layout returns the physical geometry.
func (a *Array) Layout() Layout { return a.layout }

// Stats returns a snapshot of the activity counters.
func (a *Array) Stats() Stats {
	return Stats{
		Reads:             atomic.LoadUint64(&a.stats.Reads),
		Writes:            atomic.LoadUint64(&a.stats.Writes),
		ExtraReads:        atomic.LoadUint64(&a.stats.ExtraReads),
		InlineCorrections: atomic.LoadUint64(&a.stats.InlineCorrections),
		Recoveries:        atomic.LoadUint64(&a.stats.Recoveries),
		RecoveredWords:    atomic.LoadUint64(&a.stats.RecoveredWords),
		Uncorrectable:     atomic.LoadUint64(&a.stats.Uncorrectable),
	}
}

// ResetStats zeroes the activity counters.
func (a *Array) ResetStats() {
	atomic.StoreUint64(&a.stats.Reads, 0)
	atomic.StoreUint64(&a.stats.Writes, 0)
	atomic.StoreUint64(&a.stats.ExtraReads, 0)
	atomic.StoreUint64(&a.stats.InlineCorrections, 0)
	atomic.StoreUint64(&a.stats.Recoveries, 0)
	atomic.StoreUint64(&a.stats.RecoveredWords, 0)
	atomic.StoreUint64(&a.stats.Uncorrectable, 0)
}

// Words returns the number of addressable words.
func (a *Array) Words() int { return a.layout.Words() }

// DataBits returns the logical word width.
func (a *Array) DataBits() int { return a.cfg.Horizontal.DataBits() }

// group returns the vertical parity group of data row r.
func (a *Array) group(r int) int { return r % a.cfg.VerticalGroups }

// --- word-kernel primitives --------------------------------------------
//
// The per-access data path works entirely on []uint64 scratch: gather
// the interleaved codeword bits into a scratch buffer, run the
// horizontal code's word-parallel kernel on it, and scatter only the
// changed bits back. No step allocates.

// extractInto gathers word w's codeword out of physical row r into dst
// (length >= cwWords; cleared first).
func (a *Array) extractInto(dst []uint64, r, w int) {
	row := a.data.RowWords(r)
	d := a.cfg.WordsPerRow
	nb := a.layout.CodewordBits
	if d == 1 {
		// Contiguous layout: the codeword is the row prefix.
		copy(dst[:a.cwWords], row)
		if rem := nb & 63; rem != 0 {
			dst[a.cwWords-1] &= 1<<uint(rem) - 1
		}
		return
	}
	for i := 0; i < a.cwWords; i++ {
		dst[i] = 0
	}
	col := w
	for b := 0; b < nb; b++ {
		dst[b>>6] |= (row[col>>6] >> uint(col&63) & 1) << uint(b&63)
		col += d
	}
}

// syndromeAt returns the horizontal syndrome of word (r, w) using the
// exclusive-path scratch.
func (a *Array) syndromeAt(r, w int) uint64 {
	a.extractInto(a.scr.old, r, w)
	return a.cfg.Horizontal.SyndromeWords(bitvec.MakeCodeword(a.scr.old, a.layout.CodewordBits))
}

// scatterXor flips, in physical row r (and optionally the row's
// vertical parity), every cell whose codeword bit is set in delta.
func (a *Array) scatterXor(r, w int, delta []uint64, withParity bool) {
	row := a.data.RowWords(r)
	var par []uint64
	if withParity {
		par = a.vpar.RowWords(a.group(r))
	}
	d := a.cfg.WordsPerRow
	for wi, x := range delta {
		base := wi << 6
		for x != 0 {
			b := base + bits.TrailingZeros64(x)
			x &= x - 1
			col := b*d + w
			mask := uint64(1) << uint(col&63)
			row[col>>6] ^= mask
			if withParity {
				par[col>>6] ^= mask
			}
		}
	}
}

// storeWords writes codeword cw into word slot (r, w), updating the
// vertical parity for every bit that changes (the delta-XOR of
// Fig. 4(a) step 2). Exclusive path: uses a.scr.old.
func (a *Array) storeWords(r, w int, cw []uint64) {
	a.extractInto(a.scr.old, r, w)
	for i := range a.scr.old {
		a.scr.old[i] ^= cw[i] // now the delta
	}
	a.scatterXor(r, w, a.scr.old, true)
}

// storeRawWords writes codeword bits without a parity delta — used only
// to restore corrupted cells to their intended value. Exclusive path:
// uses a.scr.old.
func (a *Array) storeRawWords(r, w int, cw []uint64) {
	a.extractInto(a.scr.old, r, w)
	for i := range a.scr.old {
		a.scr.old[i] ^= cw[i]
	}
	a.scatterXor(r, w, a.scr.old, false)
}

// encodeDataInto encodes the staged data scratch into dst.
func (a *Array) encodeDataInto(dst []uint64) {
	a.cfg.Horizontal.EncodeInto(
		bitvec.MakeCodeword(dst, a.layout.CodewordBits),
		bitvec.MakeCodeword(a.scr.data, a.DataBits()))
}

// extract reads word w's codeword out of physical row r as a fresh
// Vector (legacy/cold-path convenience).
func (a *Array) extract(r, w int) *bitvec.Vector {
	cw := bitvec.New(a.layout.CodewordBits)
	a.extractInto(cw.Words(), r, w)
	return cw
}

// checkWord returns the horizontal syndrome of word (r, w).
func (a *Array) checkWord(r, w int) uint64 { return a.syndromeAt(r, w) }

// --- access API --------------------------------------------------------

// Write stores data (DataBits wide) into word w of row r. Every write
// is converted to a read-before-write: the old codeword is read both to
// compute the vertical parity delta and to check its integrity — a
// latent error under the overwritten word triggers recovery first, as
// the hardware's read-check would.
func (a *Array) Write(r, w int, data *bitvec.Vector) ReadStatus {
	if data.Len() != a.DataBits() {
		panic(fmt.Sprintf("twod: Write data width %d != %d", data.Len(), a.DataBits()))
	}
	copy(a.scr.data, data.Words())
	return a.writeStaged(r, w)
}

// WriteUint64 is the allocation-free Write fast path for arrays with
// DataBits <= 64 (the cache word size).
func (a *Array) WriteUint64(r, w int, v uint64) ReadStatus {
	k := a.DataBits()
	if k > 64 {
		panic(fmt.Sprintf("twod: WriteUint64 on %d-bit words", k))
	}
	if k < 64 {
		v &= 1<<uint(k) - 1
	}
	a.scr.data[0] = v
	return a.writeStaged(r, w)
}

// writeStaged completes a write of the staged a.scr.data word.
func (a *Array) writeStaged(r, w int) ReadStatus {
	atomic.AddUint64(&a.stats.Writes, 1)
	atomic.AddUint64(&a.stats.ExtraReads, 1) // the read-before-write
	status := ReadClean
	if a.syndromeAt(r, w) != 0 {
		// Latent error under the write target: repair before computing
		// the delta, otherwise the corruption would poison the parity.
		if !a.repairWord(r, w) {
			// Unrepairable latent damage. Overwrite with the ordinary
			// delta write against the word's raw stored content. The
			// delta-against-raw discipline preserves every group's
			// parity mismatch exactly as it was: the old word's error
			// pattern stays represented in its own group's mismatch (a
			// residue with a nonzero horizontal syndrome, which
			// rowDeltaPlausible refuses to replay into any row), and —
			// crucially — no OTHER row's vertical recovery information
			// is touched. Rebuilding the parity from the array as
			// stored, as this path once did, erases the mismatch of
			// every still-faulty row in the bank; a later column-mode
			// recovery then solves those rows' syndromes over an
			// incomplete suspect set and, when parity columns alias
			// (EDC8 aliases physical columns mod 8), forges a
			// valid-looking wrong word — silent corruption. Residues
			// are flushed once their group checks clean
			// (FlushResidualParity / a clean Recover pass); until then
			// the group is marked tainted so row-mode recovery refuses
			// to replay its mismatch (residues can pair into code-valid
			// patterns the per-word plausibility check cannot see).
			a.residual[a.group(r)] = true
			a.encodeDataInto(a.scr.cw)
			a.storeWords(r, w, a.scr.cw)
			a.emitUncorrectable(r, w)
			return ReadUncorrectable
		}
		status = ReadRecovered
	}
	a.encodeDataInto(a.scr.cw)
	a.storeWords(r, w, a.scr.cw)
	return status
}

// Read returns word w of row r, checking the horizontal code and
// escalating to in-line SECDED correction or full 2D recovery as
// needed.
func (a *Array) Read(r, w int) (*bitvec.Vector, ReadStatus) {
	st := a.readIntoScratch(r, w)
	out := bitvec.New(a.DataBits())
	copy(out.Words(), a.scr.cw[:a.cfg.dataWords])
	out.AsCodeword().MaskTail()
	return out, st
}

// ReadUint64 is the allocation-free Read fast path for arrays with
// DataBits <= 64: it returns the data word directly.
func (a *Array) ReadUint64(r, w int) (uint64, ReadStatus) {
	k := a.DataBits()
	if k > 64 {
		panic(fmt.Sprintf("twod: ReadUint64 on %d-bit words", k))
	}
	st := a.readIntoScratch(r, w)
	v := a.scr.cw[0]
	if k < 64 {
		v &= 1<<uint(k) - 1
	}
	return v, st
}

// readIntoScratch performs the Read escalation, leaving the (possibly
// repaired) codeword in a.scr.cw. Exclusive path.
func (a *Array) readIntoScratch(r, w int) ReadStatus {
	atomic.AddUint64(&a.stats.Reads, 1)
	a.extractInto(a.scr.cw, r, w)
	cw := bitvec.MakeCodeword(a.scr.cw, a.layout.CodewordBits)
	res, _ := a.cfg.Horizontal.DecodeInPlace(cw)
	switch res {
	case ecc.Clean:
		return ReadClean
	case ecc.Corrected:
		// SECDED fixed a single-bit error in the copy; write the repair
		// back to the cells. The vertical parity reflects intended
		// contents, so restoring a corrupted cell must NOT touch parity.
		atomic.AddUint64(&a.stats.InlineCorrections, 1)
		a.storeRawWords(r, w, a.scr.cw)
		return ReadCorrectedInline
	default:
		if !a.repairWord(r, w) {
			a.extractInto(a.scr.cw, r, w)
			a.emitUncorrectable(r, w)
			return ReadUncorrectable
		}
		a.extractInto(a.scr.cw, r, w)
		return ReadRecovered
	}
}

// TryRead returns word (r, w) if its horizontal code checks clean,
// WITHOUT mutating the array: no inline correction, no recovery. The
// second result is false when the word needs repair, in which case the
// caller must escalate to Read (or Recover) under exclusive access.
// Because the only side effects are an atomic counter and pooled
// scratch, TryRead is safe for many concurrent callers as long as no
// writer runs — the shared-lock fast path of a concurrent cache.
func (a *Array) TryRead(r, w int) (*bitvec.Vector, bool) {
	atomic.AddUint64(&a.stats.Reads, 1)
	buf := a.tryScratch.Get().(*[]uint64)
	a.extractInto(*buf, r, w)
	syn := a.cfg.Horizontal.SyndromeWords(bitvec.MakeCodeword(*buf, a.layout.CodewordBits))
	if syn != 0 {
		a.tryScratch.Put(buf)
		return nil, false
	}
	out := bitvec.New(a.DataBits())
	copy(out.Words(), (*buf)[:a.cfg.dataWords])
	out.AsCodeword().MaskTail()
	a.tryScratch.Put(buf)
	return out, true
}

// TryReadUint64 is the allocation-free TryRead fast path for arrays
// with DataBits <= 64. Safe for concurrent callers (no writer running).
func (a *Array) TryReadUint64(r, w int) (uint64, bool) {
	k := a.DataBits()
	if k > 64 {
		panic(fmt.Sprintf("twod: TryReadUint64 on %d-bit words", k))
	}
	atomic.AddUint64(&a.stats.Reads, 1)
	buf := a.tryScratch.Get().(*[]uint64)
	s := *buf
	a.extractInto(s, r, w)
	syn := a.cfg.Horizontal.SyndromeWords(bitvec.MakeCodeword(s, a.layout.CodewordBits))
	v := s[0]
	a.tryScratch.Put(buf)
	if syn != 0 {
		return 0, false
	}
	if k < 64 {
		v &= 1<<uint(k) - 1
	}
	return v, true
}

// CorrectWord attempts a targeted word-level repair of (r, w) using the
// horizontal code only — no array-wide recovery march. It reports
// whether the word now checks clean. Detection-only horizontal codes
// (EDCn) can confirm a clean word but never repair a dirty one; a
// correcting code (SECDED) fixes single-bit errors in place. This is
// the cheap middle rung of a recovery escalation ladder: between a bare
// retry and the full Fig. 4(b) recovery process.
func (a *Array) CorrectWord(r, w int) bool {
	a.extractInto(a.scr.cw, r, w)
	cw := bitvec.MakeCodeword(a.scr.cw, a.layout.CodewordBits)
	res, _ := a.cfg.Horizontal.DecodeInPlace(cw)
	switch res {
	case ecc.Clean:
		return true
	case ecc.Corrected:
		// Restoring corrupted cells to their intended value must not
		// touch the vertical parity (it already reflects intent).
		atomic.AddUint64(&a.stats.InlineCorrections, 1)
		a.storeRawWords(r, w, a.scr.cw)
		return true
	default:
		return false
	}
}

// FaultyWordList returns the coordinates of every word whose horizontal
// code currently flags an error, without mutating anything. Scrubbers
// use it after a failed recovery to map residual damage back to the
// cache lines that must be decommissioned.
func (a *Array) FaultyWordList() [][2]int {
	var out [][2]int
	for r := 0; r < a.cfg.Rows; r++ {
		for w := 0; w < a.cfg.WordsPerRow; w++ {
			if a.syndromeAt(r, w) != 0 {
				out = append(out, [2]int{r, w})
			}
		}
	}
	return out
}

// repairWord runs 2D recovery and reports whether word (r, w) now
// checks clean.
func (a *Array) repairWord(r, w int) bool {
	a.Recover()
	return a.syndromeAt(r, w) == 0
}

// --- fault-injection surface (used by internal/fault) -----------------

// FlipBit flips the physical data bit at (row, col) WITHOUT updating
// the vertical parity: this models an error, not a write.
func (a *Array) FlipBit(row, col int) { a.data.Flip(row, col) }

// FlipParityBit flips a bit of vertical parity row g: errors can strike
// the parity storage too.
func (a *Array) FlipParityBit(g, col int) { a.vpar.Flip(g, col) }

// RowBits returns the physical row width.
func (a *Array) RowBits() int { return a.layout.RowBits() }

// Rows returns the number of data rows.
func (a *Array) Rows() int { return a.cfg.Rows }

// VerticalGroups returns V.
func (a *Array) VerticalGroups() int { return a.cfg.VerticalGroups }

// SnapshotData returns a deep copy of the data matrix, for
// campaign-level golden comparisons.
func (a *Array) SnapshotData() *bitvec.Matrix { return a.data.Clone() }

// ParityRowWords returns a copy of vertical parity row g's backing
// words. The replay harness digests these (alongside the data plane)
// so bit-exact determinism covers the parity state too.
func (a *Array) ParityRowWords(g int) []uint64 {
	return append([]uint64(nil), a.vpar.RowWords(g)...)
}

// ForceWrite overwrites word (r, w) unconditionally — no integrity
// check, no recovery escalation. It is the software-visible "reload
// after an uncorrectable error" path: after data beyond the 2D
// coverage is detected (a machine-check in real hardware), the OS
// refetches the line regardless of how corrupted it was. The vertical
// parity is updated by delta against the word's raw stored content,
// which preserves every group's mismatch exactly: if the overwritten
// word held a detected error, its pattern remains in the group
// mismatch as a refusable residue, and no other row's vertical
// recovery information is erased (a full parity rebuild here would
// destroy the mismatch of every still-faulty row in the array —
// see writeStaged). Set-wipe callers follow up with
// FlushResidualParity once the affected groups check clean.
func (a *Array) ForceWrite(r, w int, data *bitvec.Vector) {
	if data.Len() != a.DataBits() {
		panic(fmt.Sprintf("twod: ForceWrite data width %d != %d", data.Len(), a.DataBits()))
	}
	atomic.AddUint64(&a.stats.Writes, 1)
	if a.syndromeAt(r, w) != 0 {
		a.residual[a.group(r)] = true
	}
	copy(a.scr.data, data.Words())
	a.encodeDataInto(a.scr.cw)
	a.storeWords(r, w, a.scr.cw)
}

// ForceWriteUint64 is ForceWrite for DataBits <= 64. Allocation-free,
// and — since the raw-delta discipline replaced the full parity
// rebuild — O(codeword), not O(array).
func (a *Array) ForceWriteUint64(r, w int, v uint64) {
	k := a.DataBits()
	if k > 64 {
		panic(fmt.Sprintf("twod: ForceWriteUint64 on %d-bit words", k))
	}
	atomic.AddUint64(&a.stats.Writes, 1)
	if a.syndromeAt(r, w) != 0 {
		a.residual[a.group(r)] = true
	}
	if k < 64 {
		v &= 1<<uint(k) - 1
	}
	a.scr.data[0] = v
	a.encodeDataInto(a.scr.cw)
	a.storeWords(r, w, a.scr.cw)
}
