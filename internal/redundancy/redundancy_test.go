package redundancy

import (
	"math/rand"
	"testing"
)

func cfg() Config {
	return Config{Rows: 64, Cols: 256, SpareRows: 4, SpareCols: 4, WordBits: 64}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg()
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Fatal("rows=0 accepted")
	}
	bad = cfg()
	bad.ECCSingleBit = true
	bad.WordBits = 60 // 256 % 60 != 0
	if bad.Validate() == nil {
		t.Fatal("indivisible words accepted")
	}
	bad = cfg()
	bad.SpareRows = -1
	if bad.Validate() == nil {
		t.Fatal("negative spares accepted")
	}
}

func TestAllocateEmpty(t *testing.T) {
	plan, err := Allocate(cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || len(plan.RepairRows) != 0 || len(plan.RepairCols) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestAllocateOutOfBounds(t *testing.T) {
	if _, err := Allocate(cfg(), []Fault{{Row: 99, Col: 0}}); err == nil {
		t.Fatal("out-of-bounds fault accepted")
	}
}

func TestAllocateSingleFaults(t *testing.T) {
	// Four scattered faults, four spare rows: repairable.
	plan, err := Allocate(cfg(), []Fault{{1, 10}, {5, 90}, {9, 170}, {30, 250}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.RepairRows)+len(plan.RepairCols) > 4 {
		t.Fatalf("wasteful plan: %+v", plan)
	}
}

func TestAllocateRowFailure(t *testing.T) {
	// 40 faults along one row: must take a spare row (not 40 columns).
	var fs []Fault
	for c := 0; c < 40; c++ {
		fs = append(fs, Fault{Row: 7, Col: c * 6})
	}
	plan, err := Allocate(cfg(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || len(plan.RepairRows) != 1 || plan.RepairRows[0] != 7 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.RepairCols) != 0 {
		t.Fatalf("unnecessary column spares: %+v", plan)
	}
}

func TestAllocateColumnFailure(t *testing.T) {
	var fs []Fault
	for r := 0; r < 30; r++ {
		fs = append(fs, Fault{Row: r * 2, Col: 123})
	}
	plan, err := Allocate(cfg(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || len(plan.RepairCols) != 1 || plan.RepairCols[0] != 123 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestAllocateUnrepairable(t *testing.T) {
	// Six rows with heavy damage but only 4 spare rows and 4 spare
	// columns: not coverable.
	var fs []Fault
	for r := 0; r < 6; r++ {
		for c := 0; c < 12; c++ {
			fs = append(fs, Fault{Row: r * 10, Col: c*20 + r})
		}
	}
	plan, err := Allocate(cfg(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Repairable {
		t.Fatalf("plan should fail: %+v", plan)
	}
	if len(plan.Uncovered) == 0 {
		t.Fatal("no uncovered faults reported")
	}
}

func TestECCAbsorbsSingles(t *testing.T) {
	c := cfg()
	c.ECCSingleBit = true
	c.SpareRows, c.SpareCols = 0, 0
	// One fault per word: all absorbed by ECC, no spares needed.
	fs := []Fault{{0, 3}, {1, 70}, {2, 130}, {3, 200}}
	plan, err := Allocate(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || plan.ECCAbsorbed != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	// Two faults in the same 64-bit word: ECC cannot absorb; without
	// spares the array is dead.
	plan, err = Allocate(c, []Fault{{0, 3}, {0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Repairable {
		t.Fatalf("double-fault word should defeat ECC-only: %+v", plan)
	}
}

func TestECCPlusSparesSynergy(t *testing.T) {
	// The paper's Fig. 8(a) argument: ECC soaks the singles, spares
	// handle the rare multi-fault words — together they repair what
	// neither could alone.
	c := cfg()
	c.ECCSingleBit = true
	c.SpareRows, c.SpareCols = 1, 0
	fs := []Fault{
		{0, 3}, {5, 70}, {9, 130}, {20, 200}, {33, 10}, // singles
		{40, 3}, {40, 7}, // a double-fault word
	}
	plan, err := Allocate(c, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Repairable || plan.ECCAbsorbed != 5 || len(plan.RepairRows) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestAllocateRandomisedAlwaysCovers(t *testing.T) {
	// Property: whenever Allocate claims Repairable, every fault is on
	// a repaired row/column or absorbed by ECC.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		c := cfg()
		c.ECCSingleBit = trial%2 == 0
		n := rng.Intn(20)
		var fs []Fault
		for i := 0; i < n; i++ {
			fs = append(fs, Fault{Row: rng.Intn(c.Rows), Col: rng.Intn(c.Cols)})
		}
		plan, err := Allocate(c, fs)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Repairable {
			continue
		}
		rows := map[int]bool{}
		for _, r := range plan.RepairRows {
			rows[r] = true
		}
		cols := map[int]bool{}
		for _, cc := range plan.RepairCols {
			cols[cc] = true
		}
		// Count unexplained faults: not on a spare line; at most one per
		// word may remain if ECC is on.
		perWord := map[[2]int]int{}
		for _, f := range dedupe(fs) {
			if rows[f.Row] || cols[f.Col] {
				continue
			}
			if !c.ECCSingleBit {
				t.Fatalf("trial %d: fault %+v uncovered in repairable plan", trial, f)
			}
			perWord[[2]int{f.Row, f.Col / c.WordBits}]++
		}
		for w, cnt := range perWord {
			if cnt > 1 {
				t.Fatalf("trial %d: word %v has %d unabsorbed faults", trial, w, cnt)
			}
		}
	}
}

func TestRemapper(t *testing.T) {
	c := cfg()
	plan, err := Allocate(c, []Fault{{7, 10}, {7, 20}, {7, 30}, {7, 40}, {7, 50}})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRemapper(c, plan)
	if err != nil {
		t.Fatal(err)
	}
	prow, pcol := rm.Translate(7, 10)
	if prow < c.Rows {
		t.Fatalf("row 7 not redirected: (%d,%d)", prow, pcol)
	}
	if !rm.Redirected(7, 0) {
		t.Fatal("Redirected(7,0) false")
	}
	if rm.Redirected(8, 0) {
		t.Fatal("healthy cell redirected")
	}
	prow, pcol = rm.Translate(8, 99)
	if prow != 8 || pcol != 99 {
		t.Fatal("healthy cell translated")
	}
	r, cc := rm.SparesUsed()
	if r != 1 || cc != 0 {
		t.Fatalf("spares used = %d,%d", r, cc)
	}
}

func TestRemapperOverCapacity(t *testing.T) {
	c := cfg()
	plan := Plan{RepairRows: []int{1, 2, 3, 4, 5}}
	if _, err := NewRemapper(c, plan); err == nil {
		t.Fatal("over-capacity plan accepted")
	}
}
