// Cachenetd serves a resilient (optionally sharded) cache store over
// TCP with the netsrv pipelined binary protocol. It is the
// production-shaped composition of the stack: N independent shards
// behind the batch-amortised router, per-shard scrubbers, optional
// continuous fault storm for torture runs, an owned /metrics endpoint,
// and a graceful drain on SIGINT/SIGTERM — stop accepting, finish
// in-flight requests, flush dirty lines, then exit 0.
//
// The EPOCH opcode is wired to the store's loss-epoch oracle, so a
// remote load generator (cmd/cacheload) can distinguish accounted data
// loss from silent corruption exactly like the local soak harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twodcache"
	"twodcache/internal/fault"
	"twodcache/internal/twod"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7420", "TCP listen address (use :0 for an ephemeral port; the chosen address is printed)")
		sets          = flag.Int("sets", 64, "cache sets per shard")
		ways          = flag.Int("ways", 4, "cache ways")
		banks         = flag.Int("banks", 8, "independently locked banks per shard")
		shards        = flag.Int("shards", 1, "independent storage shards (power of two)")
		lineBytes     = flag.Int("line", 64, "line size in bytes")
		secded        = flag.Bool("secded", false, "SECDED horizontal code instead of EDC8")
		spares        = flag.Int("spares", 8, "spare-row budget per shard")
		batch         = flag.Int("batch", 32, "per-connection accumulation threshold for pipelined single ops")
		respQueue     = flag.Int("resp-queue", 128, "per-connection response queue bound (frames)")
		maxConns      = flag.Int("max-conns", 0, "concurrent connection cap (0 = unlimited)")
		scrubInterval = flag.Duration("scrub-interval", 2*time.Millisecond, "pause between background scrub sweeps")
		faultInterval = flag.Duration("fault-interval", 0, "mean time between injected fault events (0 = no storm)")
		seed          = flag.Int64("seed", 1, "random seed for the fault storm")
		httpAddr      = flag.String("http", "", "serve expvar (/debug/vars) and Prometheus text (/metrics) on this address")
		duration      = flag.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget; connections still open after it are force-closed")

		// Network chaos: any non-zero probability fronts the listener
		// with a seed-deterministic ChaosProxy — the real server moves to
		// an ephemeral port and clients dial the chaos at -addr.
		chaosReset = flag.Float64("chaos-reset-prob", 0, "per-chunk probability of an abrupt connection reset")
		chaosTear  = flag.Float64("chaos-tear-prob", 0, "per-chunk probability of a torn frame (prefix then hangup)")
		chaosDrop  = flag.Float64("chaos-drop-prob", 0, "per-chunk probability of a black-hole stall then close")
		chaosDelay = flag.Float64("chaos-delay-prob", 0, "per-chunk probability of injected delay")
		chaosSeed  = flag.Int64("chaos-seed", 0, "chaos decision seed (0 = -seed)")
	)
	flag.Parse()

	backing := twodcache.NewMemoryBacking(*lineBytes)
	reg := twodcache.NewMetricsRegistry()
	scfg := twodcache.ShardedCacheConfig{
		Shards: *shards,
		Cache: twodcache.ProtectedCacheConfig{
			Sets: *sets, Ways: *ways, LineBytes: *lineBytes,
			SECDEDHorizontal: *secded, Banks: *banks,
		},
		Resilience: twodcache.ResilienceConfig{SpareRows: *spares, Metrics: reg},
		Scrubber:   &twodcache.ScrubberConfig{Interval: *scrubInterval},
	}
	st, err := twodcache.NewShardedCache(scfg, backing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachenetd:", err)
		os.Exit(2)
	}
	st.Start()
	defer st.Stop()

	// The loss-epoch oracle behind the EPOCH opcode: route the address
	// to its owning shard and read that set's epoch.
	epochOf := func(a uint64) uint64 {
		e, la := st.Locate(a)
		return e.Cache().LossEpoch(int((la / uint64(*lineBytes)) % uint64(*sets)))
	}
	srv, err := twodcache.NewNetServer(twodcache.NetServerConfig{
		Store:     st,
		BatchSize: *batch,
		RespQueue: *respQueue,
		MaxConns:  *maxConns,
		Metrics:   reg.WithPrefix("netsrv_"),
		EpochOf:   epochOf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachenetd:", err)
		os.Exit(2)
	}

	// With chaos enabled the advertised address belongs to the proxy and
	// the real server hides on an ephemeral loopback port behind it.
	chaosOn := *chaosReset+*chaosTear+*chaosDrop+*chaosDelay > 0
	listenAddr := *addr
	if chaosOn {
		listenAddr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachenetd:", err)
		os.Exit(2)
	}
	var proxy *twodcache.ChaosProxy
	if chaosOn {
		seedVal := *chaosSeed
		if seedVal == 0 {
			seedVal = *seed
		}
		proxy, err = twodcache.NewChaosProxy(twodcache.ChaosProxyConfig{
			Seed:      seedVal,
			Target:    l.Addr().String(),
			Addr:      *addr,
			ResetProb: *chaosReset, TearProb: *chaosTear,
			DropProb: *chaosDrop, DelayProb: *chaosDelay,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachenetd: chaos:", err)
			os.Exit(2)
		}
		fmt.Printf("cachenetd: chaos proxy on %s -> %s (seed %d, reset %.3g tear %.3g drop %.3g delay %.3g)\n",
			proxy.Addr(), l.Addr(), seedVal, *chaosReset, *chaosTear, *chaosDrop, *chaosDelay)
	}
	fmt.Printf("cachenetd: listening on %s (%d shard(s), %d sets x %d ways x %dB lines)\n",
		l.Addr(), *shards, *sets, *ways, *lineBytes)

	// Metrics endpoint: an owned server on a private mux, started with a
	// synchronous Listen so a bad -http address fails loudly at startup,
	// and shut down as part of the drain.
	var httpSrv *http.Server
	if *httpAddr != "" {
		reg.PublishExpvar("twodcache")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", http.DefaultServeMux)
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachenetd: http:", err)
			os.Exit(2)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() {
			if err := httpSrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "cachenetd: http:", err)
			}
		}()
		fmt.Printf("cachenetd: serving /debug/vars and /metrics on %s\n", hl.Addr())
	}

	// Lifetime: a deadline (when asked), SIGINT, or SIGTERM ends the
	// serving phase and starts the drain.
	ctx := context.Background()
	var cancelDur context.CancelFunc
	if *duration > 0 {
		ctx, cancelDur = context.WithTimeout(ctx, *duration)
		defer cancelDur()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Optional continuous Poisson fault storm, one event at a time
	// against a uniformly chosen (shard, bank), clean-word gated under
	// the bank lock — the soak harness's torture regime, here so remote
	// clients can be the ones doing the verifying.
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		if *faultInterval <= 0 {
			return
		}
		storm := fault.NewStorm(fault.StormConfig{Seed: *seed, MeanInterval: *faultInterval})
		rng := rand.New(rand.NewSource(*seed + 7))
		banksPer := st.Shard(0).Cache().NumBanks()
		const tick = time.Millisecond
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		pending := storm.NextDelay()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			for pending -= tick; pending <= 0; pending += storm.NextDelay() {
				gi := rng.Intn(st.NumShards() * banksPer)
				c, bi := st.Shard(gi/banksPer).Cache(), gi%banksPer
				hitTags := rng.Intn(4) == 0
				c.WithBankLock(bi, func(data, tags *twod.Array) {
					a := data
					if hitTags {
						a = tags
					}
					p := storm.NextEvent(a.Rows(), a.RowBits())
					for _, fl := range p.Flips {
						w, _ := a.Layout().Locate(fl.Col)
						if _, ok := a.TryRead(fl.Row, w); ok {
							a.FlipBit(fl.Row, fl.Col)
						}
					}
				})
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		// Listener died outside a drain: fatal.
		fmt.Fprintln(os.Stderr, "cachenetd: serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stopSignals() // a second signal now kills the process the default way

	fmt.Println("cachenetd: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	drainErr := srv.Shutdown(dctx)
	if proxy != nil {
		a, r, te, dr, de := proxy.Stats()
		proxy.Close()
		fmt.Printf("cachenetd: chaos stats — %d conns, %d resets, %d tears, %d drops, %d delays\n",
			a, r, te, dr, de)
	}
	if err := <-serveErr; err != nil {
		fmt.Fprintln(os.Stderr, "cachenetd: serve:", err)
		os.Exit(1)
	}
	<-stormDone
	if httpSrv != nil {
		hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
		httpSrv.Shutdown(hctx)
		hcancel()
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "cachenetd: drain:", drainErr)
		os.Exit(1)
	}

	s := st.Stats()
	fmt.Printf("cachenetd: drained clean — %d accesses (%d hits, %d misses), %d recovered, %d uncorrectable, %d dirty lines lost\n",
		s.Accesses, s.Hits, s.Misses, s.ErrorsRecovered, s.Uncorrectable, s.DirtyLinesLost)
}
