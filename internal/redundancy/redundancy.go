// Package redundancy implements the conventional hardware-redundancy
// repair the paper compares against (§2.3): spare rows and spare
// columns that remap faulty addresses at manufacture time or in the
// field (BISR). It includes the classical repair-allocation analysis —
// must-repair reduction followed by greedy cover — and a repair planner
// that can also delegate single-bit faults to an in-line ECC, the
// paper's synergistic configuration (Stapper & Lee, ref [46]).
package redundancy

import (
	"fmt"
	"sort"
)

// Fault is one defective cell in array coordinates.
type Fault struct {
	Row, Col int
}

// Plan is the outcome of repair allocation.
type Plan struct {
	// RepairRows and RepairCols are the lines chosen for replacement.
	RepairRows, RepairCols []int
	// ECCAbsorbed counts faults left to the in-line ECC (at most one
	// per word) rather than repaired with a spare.
	ECCAbsorbed int
	// Repairable reports whether every fault is covered.
	Repairable bool
	// Uncovered lists faults left unprotected when not repairable.
	Uncovered []Fault
}

// Config describes the repair resources of one array.
type Config struct {
	// Rows and Cols give the array dimensions in cells.
	Rows, Cols int
	// SpareRows and SpareCols are the replacement lines available.
	SpareRows, SpareCols int
	// WordBits partitions each row into ECC words when ECCSingleBit is
	// set; a word can absorb at most one fault.
	WordBits int
	// ECCSingleBit lets an in-line SECDED absorb one fault per word,
	// the paper's yield-enhancement configuration (§5.2).
	ECCSingleBit bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("redundancy: invalid dimensions %dx%d", c.Rows, c.Cols)
	}
	if c.SpareRows < 0 || c.SpareCols < 0 {
		return fmt.Errorf("redundancy: negative spares")
	}
	if c.ECCSingleBit {
		if c.WordBits <= 0 || c.Cols%c.WordBits != 0 {
			return fmt.Errorf("redundancy: cols %d not divisible into %d-bit words", c.Cols, c.WordBits)
		}
	}
	return nil
}

// Allocate plans spare usage for the given fault map. The algorithm is
// the standard two-phase repair-allocation heuristic:
//
//  1. must-repair: a row with more faults than (spare columns + what
//     ECC can absorb) must take a spare row, and symmetrically for
//     columns;
//  2. greedy cover for the sparse remainder, preferring the line that
//     covers the most remaining faults;
//  3. with ECCSingleBit, leftover faults that are alone in their word
//     are absorbed by the ECC instead of consuming spares.
//
// Exact minimal allocation is NP-complete; this heuristic matches what
// production BISR controllers implement.
func Allocate(cfg Config, faults []Fault) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	for _, f := range faults {
		if f.Row < 0 || f.Row >= cfg.Rows || f.Col < 0 || f.Col >= cfg.Cols {
			return Plan{}, fmt.Errorf("redundancy: fault %+v out of bounds", f)
		}
	}
	plan := Plan{Repairable: true}
	live := dedupe(faults)

	usedRows := map[int]bool{}
	usedCols := map[int]bool{}

	// Phase 1: must-repair. Iterate because each allocation can create
	// new must-repair conditions as budgets shrink.
	for {
		progressed := false
		rowCount, colCount := tally(live)
		sparesColsLeft := cfg.SpareCols - len(usedCols)
		sparesRowsLeft := cfg.SpareRows - len(usedRows)
		for r, n := range rowCount {
			// Column spares plus (with ECC) one absorbed fault per word
			// cannot cover n faults in this row => the row must go.
			cap := sparesColsLeft
			if cfg.ECCSingleBit {
				cap += cfg.Cols / cfg.WordBits
			}
			if n > cap && sparesRowsLeft > 0 && !usedRows[r] {
				usedRows[r] = true
				sparesRowsLeft--
				live = dropRow(live, r)
				progressed = true
			}
		}
		for c, n := range colCount {
			cap := sparesRowsLeft
			if cfg.ECCSingleBit {
				cap += cfg.Rows // each row's word holding col c absorbs one
			}
			if n > cap && cfg.SpareCols-len(usedCols) > 0 && !usedCols[c] {
				usedCols[c] = true
				live = dropCol(live, c)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	// Phase 2: ECC absorption — faults alone in their word are free.
	if cfg.ECCSingleBit {
		live, plan.ECCAbsorbed = absorbSingles(cfg, live)
	}

	// Phase 3: greedy cover with the remaining spares.
	for len(live) > 0 {
		rowCount, colCount := tally(live)
		bestRow, bestRowN := -1, 0
		for r, n := range rowCount {
			if n > bestRowN && cfg.SpareRows-len(usedRows) > 0 {
				bestRow, bestRowN = r, n
			}
		}
		bestCol, bestColN := -1, 0
		for c, n := range colCount {
			if n > bestColN && cfg.SpareCols-len(usedCols) > 0 {
				bestCol, bestColN = c, n
			}
		}
		switch {
		case bestRowN == 0 && bestColN == 0:
			plan.Repairable = false
			plan.Uncovered = live
			live = nil
		case bestRowN >= bestColN:
			usedRows[bestRow] = true
			live = dropRow(live, bestRow)
		default:
			usedCols[bestCol] = true
			live = dropCol(live, bestCol)
		}
	}

	plan.RepairRows = sortedKeys(usedRows)
	plan.RepairCols = sortedKeys(usedCols)
	return plan, nil
}

// absorbSingles removes faults that are the only fault in their ECC
// word, returning the remainder and the absorbed count.
func absorbSingles(cfg Config, faults []Fault) ([]Fault, int) {
	perWord := map[[2]int][]Fault{}
	for _, f := range faults {
		key := [2]int{f.Row, f.Col / cfg.WordBits}
		perWord[key] = append(perWord[key], f)
	}
	var rest []Fault
	absorbed := 0
	for _, fs := range perWord {
		if len(fs) == 1 {
			absorbed++
			continue
		}
		rest = append(rest, fs...)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Row != rest[j].Row {
			return rest[i].Row < rest[j].Row
		}
		return rest[i].Col < rest[j].Col
	})
	return rest, absorbed
}

func dedupe(fs []Fault) []Fault {
	seen := map[Fault]bool{}
	var out []Fault
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

func tally(fs []Fault) (rows, cols map[int]int) {
	rows, cols = map[int]int{}, map[int]int{}
	for _, f := range fs {
		rows[f.Row]++
		cols[f.Col]++
	}
	return rows, cols
}

func dropRow(fs []Fault, r int) []Fault {
	var out []Fault
	for _, f := range fs {
		if f.Row != r {
			out = append(out, f)
		}
	}
	return out
}

func dropCol(fs []Fault, c int) []Fault {
	var out []Fault
	for _, f := range fs {
		if f.Col != c {
			out = append(out, f)
		}
	}
	return out
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
