// Protectedcache: the end-to-end artefact — a functional write-back
// cache whose data AND tag stores live in 2D-coded arrays. We run a
// workload against it while bombarding the arrays with soft errors;
// every read still returns exactly what was written.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"twodcache"
)

func main() {
	backing := twodcache.NewMemoryBacking(64)
	cache, err := twodcache.NewProtectedCache(twodcache.ProtectedCacheConfig{
		Sets: 64, Ways: 4, LineBytes: 64,
	}, backing)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	ref := map[uint64]byte{}
	upsets, mces := 0, 0
	const accesses = 20000
	for i := 0; i < accesses; i++ {
		addr := uint64(rng.Intn(1 << 16))
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			err := cache.Write(addr, []byte{v})
			if errors.Is(err, twodcache.ErrCacheUncorrectable) {
				// The machine-check path: detected, never silent. The OS
				// reloads the set from memory; unflushed dirty data in it
				// is lost, so drop those addresses from the reference.
				mces++
				cache.Repair(addr)
				dropSet(ref, addr)
				continue
			} else if err != nil {
				log.Fatal(err)
			}
			ref[addr] = v
		} else {
			got, err := cache.Read(addr, 1)
			if errors.Is(err, twodcache.ErrCacheUncorrectable) {
				mces++
				cache.Repair(addr)
				dropSet(ref, addr)
				continue
			} else if err != nil {
				log.Fatal(err)
			}
			if want, tracked := ref[addr]; tracked && got[0] != want {
				log.Fatalf("SILENT DATA LOSS at %#x: got %d want %d", addr, got[0], want)
			}
		}
		// Periodic scrubbing bounds error accumulation between events
		// (see the abl-scrub ablation for the interval trade-off).
		if i%250 == 0 && !cache.Scrub() {
			// The scrub pass itself found damage beyond coverage: the
			// machine-check path, at scrub time instead of access time.
			mces++
			cache.RepairAll()
			ref = map[uint64]byte{} // unflushed dirty data is lost
		}
		// A soft-error storm: one upset event every ~100 accesses,
		// sometimes a whole 8x8 cluster, aimed at data or tags.
		if rng.Intn(100) == 0 {
			upsets++
			// Aim at a random bank — every bank is its own 2D
			// protection domain, so storms must cover all of them.
			dataArr, tagArr := cache.BankArrays(rng.Intn(cache.NumBanks()))
			target := dataArr
			if rng.Intn(4) == 0 {
				target = tagArr
			}
			r0, c0 := rng.Intn(target.Rows()), rng.Intn(target.RowBits()-8)
			if rng.Intn(3) == 0 {
				for r := r0; r < r0+8 && r < target.Rows(); r++ {
					for c := c0; c < c0+8; c++ {
						target.FlipBit(r, c)
					}
				}
			} else {
				target.FlipBit(r0, c0)
			}
		}
	}
	_ = cache.Flush()

	st := cache.Stats()
	fmt.Printf("accesses: %d (%.1f%% hit rate), %d upset events injected\n",
		accesses, 100*float64(st.Hits)/float64(st.Hits+st.Misses), upsets)
	fmt.Printf("errors transparently recovered: %d; writebacks: %d\n",
		st.ErrorsRecovered, st.Writebacks)
	fmt.Printf("machine-check events (beyond 32x32 coverage): %d — detected, never silent\n", mces)
	fmt.Println("every surviving read matched the reference model: no silent corruption")
}

// dropSet forgets reference values whose cache set was repaired (their
// unflushed dirty data is legitimately lost in a machine check).
func dropSet(ref map[uint64]byte, addr uint64) {
	set := (addr >> 6) & 63
	for a := range ref {
		if (a>>6)&63 == set {
			delete(ref, a)
		}
	}
}
