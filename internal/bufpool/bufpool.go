// Package bufpool is a size-classed free list for the serving data
// plane's byte buffers: request frames, response frames, and the
// destination arenas batch reads scatter into. Buffers recycle through
// power-of-two size classes (64 B … 4 MiB, matching the wire layer's
// maxFrame), so a steady-state server allocates nothing per request —
// every Get is satisfied from the class pool and every Put refills it.
//
// Ownership contract: a buffer obtained from Get belongs to exactly one
// owner at a time. Put transfers it back to the pool; the caller must
// not touch it afterwards. Losing a buffer (never calling Put) is safe
// — the GC reclaims it and the pool refills on demand — so APIs that
// hand buffer ownership to their caller (a client returning a response
// payload) simply never Put.
//
// Tests flip the package into check mode (SetCheck), which trades the
// lock-free fast path for a deterministic accounting pool: double puts
// and writes into a buffer after its Put (use-after-put) panic at the
// offending Put/Get, and Outstanding reports buffers currently checked
// out, so leaks are assertable.
package bufpool

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	minClassBits = 6  // 64 B — smaller asks round up
	maxClassBits = 22 // 4 MiB — the wire layer's maxFrame
	numClasses   = maxClassBits - minClassBits + 1

	// poison fills recycled buffers in check mode; a Get that finds a
	// disturbed byte proves someone wrote through a stale reference.
	poison = 0xDB
)

// holder carries a buffer through a sync.Pool without boxing the slice
// header into an interface (which would allocate on every Put). Empty
// holders recycle through headerPool, so the steady state allocates
// neither buffers nor holders.
type holder struct{ b []byte }

var (
	classes    [numClasses]sync.Pool // *holder with a buffer attached
	headerPool sync.Pool             // *holder, detached
)

// classFor returns the class index whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // smallest power of two >= n (n>=2)
	if n <= 1<<minClassBits {
		return 0
	}
	return b - minClassBits
}

// classOf returns the class index owning capacity c, or -1 when c is
// not exactly a class size (such buffers are not recycled).
func classOf(c int) int {
	if c&(c-1) != 0 || c < 1<<minClassBits || c > 1<<maxClassBits {
		return -1
	}
	return bits.TrailingZeros(uint(c)) - minClassBits
}

// Get returns a buffer of length n. Its capacity is the next size
// class, so appends within the class never reallocate. Asks beyond the
// largest class fall back to a plain allocation (Put will drop them).
func Get(n int) []byte {
	if n < 0 {
		panic("bufpool: negative length")
	}
	cls := classFor(n)
	if cls < 0 {
		return make([]byte, n)
	}
	if checkMode.Load() {
		return checkGet(n, cls)
	}
	h, _ := classes[cls].Get().(*holder)
	if h == nil {
		return make([]byte, n, 1<<(cls+minClassBits))
	}
	b := h.b[:n]
	h.b = nil
	headerPool.Put(h)
	return b
}

// Put recycles b into the class owning its capacity. Buffers whose
// capacity is not a class size — grown past their class by append, or
// allocated elsewhere — are dropped silently. b must not be used after
// Put.
func Put(b []byte) {
	cls := classOf(cap(b))
	if cls < 0 {
		return
	}
	if checkMode.Load() {
		checkPut(b, cls)
		return
	}
	h, _ := headerPool.Get().(*holder)
	if h == nil {
		h = new(holder)
	}
	h.b = b[:cap(b)]
	classes[cls].Put(h)
}

// --- check mode -----------------------------------------------------

var (
	checkMode atomic.Bool

	checkMu     sync.Mutex
	checkFree   [numClasses][][]byte // deterministic LIFO free lists
	checkPooled map[*byte]struct{}   // first-byte pointers of pooled buffers
	checkOut    int                  // buffers currently checked out
)

// SetCheck switches the accounting pool on or off. Turning it on (or
// off) resets the check-mode state; the lock-free pools are left alone.
// Intended for tests only — the two modes do not share buffers.
func SetCheck(on bool) {
	checkMu.Lock()
	defer checkMu.Unlock()
	checkMode.Store(on)
	for i := range checkFree {
		checkFree[i] = nil
	}
	checkPooled = map[*byte]struct{}{}
	checkOut = 0
}

// Outstanding reports how many check-mode buffers are currently checked
// out (Get without a matching Put) — the leak detector's primitive.
func Outstanding() int {
	checkMu.Lock()
	defer checkMu.Unlock()
	return checkOut
}

func checkGet(n, cls int) []byte {
	checkMu.Lock()
	defer checkMu.Unlock()
	checkOut++
	free := checkFree[cls]
	if len(free) == 0 {
		return make([]byte, n, 1<<(cls+minClassBits))
	}
	b := free[len(free)-1]
	checkFree[cls] = free[:len(free)-1]
	delete(checkPooled, &b[0])
	for i, v := range b {
		if v != poison {
			panic(fmt.Sprintf("bufpool: pooled buffer disturbed at byte %d (write after Put?)", i))
		}
	}
	return b[:n]
}

func checkPut(b []byte, cls int) {
	b = b[:cap(b)]
	checkMu.Lock()
	defer checkMu.Unlock()
	if _, dup := checkPooled[&b[0]]; dup {
		panic("bufpool: double Put of the same buffer")
	}
	for i := range b {
		b[i] = poison
	}
	checkPooled[&b[0]] = struct{}{}
	checkFree[cls] = append(checkFree[cls], b)
	if checkOut > 0 {
		checkOut--
	}
}
